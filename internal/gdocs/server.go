package gdocs

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"privedit/internal/delta"
	"privedit/internal/obs"
)

// Telemetry for the simulated service. No-ops until obs.Enable().
var (
	metricConflicts = obs.NewCounter("privedit_version_conflicts_total",
		"Optimistic-concurrency rejections: the client's base version no longer matched the stored one.")
	metricDocs = obs.NewGauge("privedit_server_documents",
		"Documents currently stored by the simulated service.")
	metricObservedTruncations = obs.NewCounter("privedit_observation_truncations_total",
		"Times the honest-but-curious observation log hit its cap and dropped its oldest bytes.")
)

// MaxDocBytes is the document size limit: "Google currently enforces a
// maximum file size of 500 kilobytes" (§V-C). The limit is what makes the
// ciphertext blow-up of 1-character blocks unacceptable.
const MaxDocBytes = 500 * 1024

// Server errors surfaced as HTTP statuses.
var (
	errNotFound = errors.New("gdocs: no such document")
	errConflict = errors.New("gdocs: delta does not apply to stored content")
	errTooLarge = errors.New("gdocs: document exceeds size limit")
)

type serverDoc struct {
	content string
	version int
}

// Server is the simulated Google Documents service: an in-memory document
// store behind the reverse-engineered HTTP protocol. It never interprets
// document text — the property the whole approach relies on. It is safe
// for concurrent use.
type Server struct {
	mu       sync.Mutex
	docs     map[string]*serverDoc
	maxBytes int

	// observed collects document content the server has seen, for the
	// leak-detector tests: with the extension installed, no plaintext
	// substring may ever show up here. It is bounded by observedCap: when
	// full, the oldest bytes are dropped (and counted), so observation can
	// stay on in long-running servers without growing without bound.
	observed    []byte
	observedCap int
	observe     bool
}

// DefaultObservationCap bounds the observation log: enough for several
// maximum-size documents of history, small enough to leave on forever.
const DefaultObservationCap = 4 * MaxDocBytes

// NewServer creates an empty document store with the 500 KB per-document
// limit.
func NewServer() *Server {
	return &Server{
		docs:        make(map[string]*serverDoc),
		maxBytes:    MaxDocBytes,
		observedCap: DefaultObservationCap,
	}
}

// SetMaxBytes overrides the per-document size limit (tests).
func (s *Server) SetMaxBytes(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.maxBytes = n
}

// EnableObservation turns on recording of all content the server sees,
// supporting the confidentiality leak detector.
func (s *Server) EnableObservation() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.observe = true
}

// SetObservationCap overrides the observation log's byte cap. n <= 0
// removes the bound entirely (tests only; an unbounded log in a
// long-running server is the leak this cap exists to prevent).
func (s *Server) SetObservationCap(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.observedCap = n
}

// Observed returns what the (honest-but-curious) server has seen — the
// most recent observedCap bytes of it.
func (s *Server) Observed() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return string(s.observed)
}

func (s *Server) see(content string) {
	if !s.observe {
		return
	}
	s.observed = append(s.observed, content...)
	s.observed = append(s.observed, '\n')
	if s.observedCap > 0 && len(s.observed) > s.observedCap {
		drop := len(s.observed) - s.observedCap
		s.observed = append(s.observed[:0], s.observed[drop:]...)
		metricObservedTruncations.Inc()
	}
}

// Create makes a new empty document. It fails if the id already exists.
func (s *Server) Create(docID string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.docs[docID]; ok {
		return fmt.Errorf("gdocs: document %q already exists", docID)
	}
	s.docs[docID] = &serverDoc{}
	metricDocs.Set(float64(len(s.docs)))
	return nil
}

// Content returns the stored content and version of a document.
func (s *Server) Content(docID string) (string, int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	doc, ok := s.docs[docID]
	if !ok {
		return "", 0, errNotFound
	}
	return doc.content, doc.version, nil
}

// SetContents replaces a document's full content (the docContents save).
// baseVersion is the server version the client last saw; pass -1 to skip
// the optimistic-concurrency check.
func (s *Server) SetContents(docID, content string, baseVersion int) (Ack, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	doc, ok := s.docs[docID]
	if !ok {
		return Ack{}, errNotFound
	}
	if baseVersion >= 0 && baseVersion != doc.version {
		metricConflicts.Inc()
		return Ack{}, errConflict
	}
	if len(content) > s.maxBytes {
		return Ack{}, errTooLarge
	}
	s.see(content)
	doc.content = content
	doc.version++
	return Ack{
		ContentFromServer:     doc.content,
		ContentFromServerHash: ContentHash(doc.content),
		Version:               doc.version,
	}, nil
}

// ApplyDelta applies an incremental update (the delta save). The server
// has no idea whether the stored text is plaintext or ciphertext; it just
// executes the edit script. baseVersion as in SetContents.
func (s *Server) ApplyDelta(docID, wire string, baseVersion int) (Ack, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	doc, ok := s.docs[docID]
	if !ok {
		return Ack{}, errNotFound
	}
	if baseVersion >= 0 && baseVersion != doc.version {
		metricConflicts.Inc()
		return Ack{}, errConflict
	}
	d, err := delta.Parse(wire)
	if err != nil {
		return Ack{}, fmt.Errorf("%w: %v", errConflict, err)
	}
	s.see(wire)
	updated, err := d.Apply(doc.content)
	if err != nil {
		// A delta computed against a stale version: the conflict case the
		// paper hits during simultaneous editing (§VII-A).
		metricConflicts.Inc()
		return Ack{}, errConflict
	}
	if len(updated) > s.maxBytes {
		return Ack{}, errTooLarge
	}
	doc.content = updated
	doc.version++
	return Ack{
		ContentFromServer:     doc.content,
		ContentFromServerHash: ContentHash(doc.content),
		Version:               doc.version,
	}, nil
}

// featureReply models the server-side features of §VII-A. They "work" by
// processing the stored document text — which is gibberish once the
// document is encrypted, and the requests never reach the server anyway
// because the extension blocks them.
func (s *Server) featureReply(kind, docID string) (string, error) {
	content, _, err := s.Content(docID)
	if err != nil {
		return "", err
	}
	switch kind {
	case "translate":
		// Toy "translation": uppercase the stored text.
		return strings.ToUpper(content), nil
	case "spell":
		// Toy spell check: report words longer than 12 characters.
		var odd []string
		for _, w := range strings.Fields(content) {
			if len(w) > 12 {
				odd = append(odd, w)
			}
		}
		return strings.Join(odd, ","), nil
	case "export":
		return "%PDF-FAKE%" + content, nil
	case "drawing":
		return "<svg>" + content + "</svg>", nil
	default:
		return "", fmt.Errorf("gdocs: unknown feature %q", kind)
	}
}

// ServeHTTP implements the wire protocol.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == PathCreate && r.Method == http.MethodPost:
		if err := r.ParseForm(); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := s.Create(r.PostForm.Get(FieldDocID)); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		fmt.Fprint(w, "ok")

	case r.URL.Path == PathDoc && r.Method == http.MethodGet:
		content, version, err := s.Content(r.URL.Query().Get(FieldDocID))
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.Header().Set("X-Doc-Version", strconv.Itoa(version))
		fmt.Fprint(w, content)

	case r.URL.Path == PathDoc && r.Method == http.MethodPost:
		if err := r.ParseForm(); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		docID := r.PostForm.Get(FieldDocID)
		if docID == "" {
			docID = r.URL.Query().Get(FieldDocID)
		}
		baseVersion := -1
		if v := r.PostForm.Get(FieldVersion); v != "" {
			parsed, err := strconv.Atoi(v)
			if err != nil {
				http.Error(w, "gdocs: bad version", http.StatusBadRequest)
				return
			}
			baseVersion = parsed
		}
		var (
			ack Ack
			err error
		)
		if r.PostForm.Has(FieldDocContents) {
			ack, err = s.SetContents(docID, r.PostForm.Get(FieldDocContents), baseVersion)
		} else if r.PostForm.Has(FieldDelta) {
			ack, err = s.ApplyDelta(docID, r.PostForm.Get(FieldDelta), baseVersion)
		} else {
			http.Error(w, "gdocs: no docContents or delta", http.StatusBadRequest)
			return
		}
		switch {
		case errors.Is(err, errNotFound):
			http.Error(w, err.Error(), http.StatusNotFound)
		case errors.Is(err, errConflict):
			http.Error(w, err.Error(), http.StatusConflict)
		case errors.Is(err, errTooLarge):
			http.Error(w, err.Error(), http.StatusRequestEntityTooLarge)
		case err != nil:
			http.Error(w, err.Error(), http.StatusInternalServerError)
		default:
			fmt.Fprint(w, ack.Encode())
		}

	case r.Method == http.MethodPost &&
		(r.URL.Path == PathTranslate || r.URL.Path == PathSpell ||
			r.URL.Path == PathDrawing || r.URL.Path == PathExport):
		if err := r.ParseForm(); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		kind := map[string]string{
			PathTranslate: "translate",
			PathSpell:     "spell",
			PathDrawing:   "drawing",
			PathExport:    "export",
		}[r.URL.Path]
		out, err := s.featureReply(kind, r.PostForm.Get(FieldDocID))
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		fmt.Fprint(w, out)

	default:
		http.Error(w, "gdocs: unknown endpoint", http.StatusNotFound)
	}
}
