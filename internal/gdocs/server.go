package gdocs

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"privedit/internal/delta"
	"privedit/internal/obs"
	"privedit/internal/trace"
)

// Telemetry for the simulated service. No-ops until obs.Enable().
var (
	metricConflicts = obs.NewCounter("privedit_version_conflicts_total",
		"Optimistic-concurrency rejections: the client's base version no longer matched the stored one.")
	metricDocs = obs.NewGauge("privedit_server_documents",
		"Documents currently stored by the simulated service.")
	metricObservedTruncations = obs.NewCounter("privedit_observation_truncations_total",
		"Times the honest-but-curious observation log hit its cap and dropped its oldest bytes.")
)

// MaxDocBytes is the document size limit: "Google currently enforces a
// maximum file size of 500 kilobytes" (§V-C). The limit is what makes the
// ciphertext blow-up of 1-character blocks unacceptable.
const MaxDocBytes = 500 * 1024

// Server errors surfaced as HTTP statuses.
var (
	errNotFound = errors.New("gdocs: no such document")
	errConflict = errors.New("gdocs: delta does not apply to stored content")
	errTooLarge = errors.New("gdocs: document exceeds size limit")
	errStore    = errors.New("gdocs: persistence failure")
)

// Server is the simulated Google Documents service: an in-memory document
// store behind the reverse-engineered HTTP protocol. It never interprets
// document text — the property the whole approach relies on.
//
// The store is sharded (NumShards lock stripes) with a per-document RW
// lock, so concurrent requests against distinct documents never contend on
// a global lock, and concurrent readers of one document proceed together.
// Configuration (SetMaxBytes, EnableObservation, SetObservationCap) uses
// atomics and a dedicated observation-log lock, so it is safe to call while
// requests are in flight.
type Server struct {
	store *store

	maxBytes atomic.Int64
	observe  atomic.Bool

	// The observation log is cross-document by design (it models what a
	// curious provider accumulates over time), so it keeps its own lock
	// rather than riding on any document's.
	obsMu       sync.Mutex
	observed    []byte
	observedCap int

	// Admission control (nil adm = unlimited). draining flips once, when
	// the server starts refusing new work ahead of shutdown; inflight
	// counts requests between admission and response so Drain can wait
	// them out.
	adm      *admission
	draining atomic.Bool
	inflight atomic.Int64
}

// DefaultObservationCap bounds the observation log: enough for several
// maximum-size documents of history, small enough to leave on forever.
const DefaultObservationCap = 4 * MaxDocBytes

// serverConfig collects NewServer options before the store is built.
type serverConfig struct {
	backend    Backend
	cacheBytes int64
	admission  *AdmissionPolicy
	clock      func() time.Time
}

// ServerOption configures NewServer.
type ServerOption func(*serverConfig)

// WithBackend attaches a persistence backend: every accepted update is
// written through to it before the acknowledgment, documents absent from
// the resident cache are faulted in from it, and the cache becomes
// evictable (see WithCacheBytes).
func WithBackend(b Backend) ServerOption {
	return func(c *serverConfig) { c.backend = b }
}

// WithCacheBytes bounds the resident document cache (split evenly across
// the shards). Only meaningful with a backend; 0 keeps every document
// resident.
func WithCacheBytes(n int64) ServerOption {
	return func(c *serverConfig) { c.cacheBytes = n }
}

// WithAdmission enables per-client token-bucket rate limiting on the
// document endpoints.
func WithAdmission(p AdmissionPolicy) ServerOption {
	return func(c *serverConfig) { c.admission = &p }
}

// WithClock overrides the admission controller's time source (tests).
func WithClock(now func() time.Time) ServerOption {
	return func(c *serverConfig) { c.clock = now }
}

// NewServer creates a document store with the 500 KB per-document limit.
// Without options it is the original purely in-memory server.
func NewServer(opts ...ServerOption) *Server {
	var cfg serverConfig
	for _, o := range opts {
		o(&cfg)
	}
	s := &Server{
		store:       newStore(cfg.backend, cfg.cacheBytes),
		observedCap: DefaultObservationCap,
	}
	s.maxBytes.Store(MaxDocBytes)
	if cfg.admission != nil {
		s.adm = newAdmission(*cfg.admission, cfg.clock)
	}
	metricDocs.Set(float64(s.store.docs()))
	return s
}

// ResidentDocs returns how many documents are currently cache-resident
// (equal to the total store size when no backend is attached).
func (s *Server) ResidentDocs() int64 { return s.store.resident() }

// Drain puts the server into drain mode — every new document request is
// refused with a retryable 503 — waits for in-flight requests to finish
// (bounded by ctx), and flushes the persistence backend so every
// acknowledged save is on stable storage. It is the graceful half of
// shutdown; kill -9 is the other half, and recovery covers it.
func (s *Server) Drain(ctx context.Context) error {
	if s.draining.CompareAndSwap(false, true) {
		metricDraining.Set(1)
	}
	for s.inflight.Load() > 0 {
		select {
		case <-ctx.Done():
			return fmt.Errorf("gdocs: drain: %d requests still in flight: %w", s.inflight.Load(), ctx.Err())
		case <-time.After(2 * time.Millisecond):
		}
	}
	if s.store.backend != nil {
		if err := s.store.backend.Flush(); err != nil {
			return fmt.Errorf("gdocs: drain flush: %w", err)
		}
	}
	return nil
}

// Draining reports whether the server is refusing new work.
func (s *Server) Draining() bool { return s.draining.Load() }

// SetMaxBytes overrides the per-document size limit (tests). Safe to call
// with requests in flight.
func (s *Server) SetMaxBytes(n int) {
	s.maxBytes.Store(int64(n))
}

// EnableObservation turns on recording of all content the server sees,
// supporting the confidentiality leak detector. Safe to call with requests
// in flight.
func (s *Server) EnableObservation() {
	s.observe.Store(true)
}

// SetObservationCap overrides the observation log's byte cap. n <= 0
// removes the bound entirely (tests only; an unbounded log in a
// long-running server is the leak this cap exists to prevent). Safe to
// call with requests in flight.
func (s *Server) SetObservationCap(n int) {
	s.obsMu.Lock()
	defer s.obsMu.Unlock()
	s.observedCap = n
}

// Observed returns what the (honest-but-curious) server has seen — the
// most recent observedCap bytes of it.
func (s *Server) Observed() string {
	s.obsMu.Lock()
	defer s.obsMu.Unlock()
	return string(s.observed)
}

func (s *Server) see(content string) {
	if !s.observe.Load() {
		return
	}
	s.obsMu.Lock()
	defer s.obsMu.Unlock()
	s.observed = append(s.observed, content...)
	s.observed = append(s.observed, '\n')
	if s.observedCap > 0 && len(s.observed) > s.observedCap {
		drop := len(s.observed) - s.observedCap
		s.observed = append(s.observed[:0], s.observed[drop:]...)
		metricObservedTruncations.Inc()
	}
}

// Create makes a new empty document. It fails if the id already exists.
func (s *Server) Create(ctx context.Context, docID string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := s.store.create(docID); err != nil {
		return err
	}
	metricDocs.Set(float64(s.store.docs()))
	return nil
}

// Content returns the stored content and version of a document.
func (s *Server) Content(ctx context.Context, docID string) (string, int, error) {
	if err := ctx.Err(); err != nil {
		return "", 0, err
	}
	_, sp := trace.Start(ctx, trace.SpanServerStore)
	defer sp.End()
	sp.Annotate("op", "content")
	sp.Annotate("doc", docID)
	doc, err := s.store.acquire(docID)
	if err != nil {
		return "", 0, fmt.Errorf("%w: %v", errStore, err)
	}
	if doc == nil {
		return "", 0, errNotFound
	}
	defer s.store.release(doc)
	doc.mu.RLock()
	defer doc.mu.RUnlock()
	return doc.content, doc.version, nil
}

// SetContents replaces a document's full content (the docContents save).
// baseVersion is the server version the client last saw; pass -1 to skip
// the optimistic-concurrency check.
func (s *Server) SetContents(ctx context.Context, docID, content string, baseVersion int) (Ack, error) {
	return s.setContents(ctx, docID, content, baseVersion, "")
}

func (s *Server) setContents(ctx context.Context, docID, content string, baseVersion int, saveID string) (Ack, error) {
	if err := ctx.Err(); err != nil {
		return Ack{}, err
	}
	_, sp := trace.Start(ctx, trace.SpanServerStore)
	defer sp.End()
	sp.Annotate("op", "set_contents")
	sp.Annotate("doc", docID)
	doc, err := s.store.acquire(docID)
	if err != nil {
		return Ack{}, fmt.Errorf("%w: %v", errStore, err)
	}
	if doc == nil {
		return Ack{}, errNotFound
	}
	defer s.store.release(doc)
	doc.mu.Lock()
	defer doc.mu.Unlock()
	if version, ok := doc.replayLocked(saveID); ok {
		// Idempotent replay: the save applied but its response was lost.
		sp.Annotate("replay", "1")
		return Ack{Version: version}, nil
	}
	if baseVersion >= 0 && baseVersion != doc.version {
		metricConflicts.Inc()
		sp.Annotate("conflict", "1")
		return Ack{}, errConflict
	}
	if int64(len(content)) > s.maxBytes.Load() {
		return Ack{}, errTooLarge
	}
	// Write-ahead: the new state must be durable before it is applied or
	// acknowledged, so kill -9 after the ack can never lose it.
	if err := s.persistLocked(doc, docID, content, doc.version+1); err != nil {
		return Ack{}, err
	}
	s.see(content)
	doc.content = content
	doc.version++
	doc.recordLocked(histEntry{id: saveID, full: true, version: doc.version})
	return Ack{
		ContentFromServer:     doc.content,
		ContentFromServerHash: ContentHash(doc.content),
		Version:               doc.version,
	}, nil
}

// persistLocked writes a document's next state through to the backend
// (when one is attached) and re-charges the cache budget for the size
// change. Callers hold doc.mu; the pin keeps the document resident.
func (s *Server) persistLocked(doc *serverDoc, docID, content string, version int) error {
	if s.store.backend == nil {
		return nil
	}
	if err := s.store.backend.Put(docID, content, version); err != nil {
		return fmt.Errorf("%w: %v", errStore, err)
	}
	s.store.resize(doc, len(content))
	return nil
}

// ApplyDelta applies an incremental update (the delta save). The server
// has no idea whether the stored text is plaintext or ciphertext; it just
// executes the edit script. baseVersion as in SetContents.
func (s *Server) ApplyDelta(ctx context.Context, docID, wire string, baseVersion int) (Ack, error) {
	return s.applyDelta(ctx, docID, wire, baseVersion, "")
}

func (s *Server) applyDelta(ctx context.Context, docID, wire string, baseVersion int, saveID string) (Ack, error) {
	if err := ctx.Err(); err != nil {
		return Ack{}, err
	}
	_, sp := trace.Start(ctx, trace.SpanServerStore)
	defer sp.End()
	sp.Annotate("op", "apply_delta")
	sp.Annotate("doc", docID)
	doc, aerr := s.store.acquire(docID)
	if aerr != nil {
		return Ack{}, fmt.Errorf("%w: %v", errStore, aerr)
	}
	if doc == nil {
		return Ack{}, errNotFound
	}
	defer s.store.release(doc)
	doc.mu.Lock()
	defer doc.mu.Unlock()
	if version, ok := doc.replayLocked(saveID); ok {
		// Idempotent replay: the save applied but its response was lost.
		sp.Annotate("replay", "1")
		return Ack{Version: version}, nil
	}
	if baseVersion >= 0 && baseVersion != doc.version {
		metricConflicts.Inc()
		sp.Annotate("conflict", "1")
		return Ack{}, errConflict
	}
	d, err := delta.Parse(wire)
	if err != nil {
		return Ack{}, fmt.Errorf("%w: %v", errConflict, err)
	}
	s.see(wire)
	updated, err := d.Apply(doc.content)
	if err != nil {
		// A delta computed against a stale version: the conflict case the
		// paper hits during simultaneous editing (§VII-A).
		metricConflicts.Inc()
		sp.Annotate("conflict", "1")
		return Ack{}, errConflict
	}
	if int64(len(updated)) > s.maxBytes.Load() {
		return Ack{}, errTooLarge
	}
	// Write-ahead: durable before applied or acknowledged.
	if err := s.persistLocked(doc, docID, updated, doc.version+1); err != nil {
		return Ack{}, err
	}
	doc.content = updated
	doc.version++
	doc.recordLocked(histEntry{id: saveID, wire: wire, version: doc.version})
	return Ack{
		ContentFromServer:     doc.content,
		ContentFromServerHash: ContentHash(doc.content),
		Version:               doc.version,
	}, nil
}

// DeltasSince returns the updates applied after version since as a
// catch-up, when the document's bounded history still covers the span and
// it contains no full-content save. ok is false when the caller must fall
// back to a full fetch.
func (s *Server) DeltasSince(ctx context.Context, docID string, since int) (Catchup, bool, error) {
	if err := ctx.Err(); err != nil {
		return Catchup{}, false, err
	}
	_, sp := trace.Start(ctx, trace.SpanServerStore)
	defer sp.End()
	sp.Annotate("op", "deltas_since")
	sp.Annotate("doc", docID)
	doc, err := s.store.acquire(docID)
	if err != nil {
		return Catchup{}, false, fmt.Errorf("%w: %v", errStore, err)
	}
	if doc == nil {
		return Catchup{}, false, errNotFound
	}
	defer s.store.release(doc)
	doc.mu.RLock()
	defer doc.mu.RUnlock()
	wires, ok := doc.deltasSinceLocked(since)
	if !ok {
		return Catchup{}, false, nil
	}
	return Catchup{Deltas: wires, Version: doc.version}, true, nil
}

// featureReply models the server-side features of §VII-A. They "work" by
// processing the stored document text — which is gibberish once the
// document is encrypted, and the requests never reach the server anyway
// because the extension blocks them.
func (s *Server) featureReply(ctx context.Context, kind, docID string) (string, error) {
	content, _, err := s.Content(ctx, docID)
	if err != nil {
		return "", err
	}
	switch kind {
	case "translate":
		// Toy "translation": uppercase the stored text.
		return strings.ToUpper(content), nil
	case "spell":
		// Toy spell check: report words longer than 12 characters.
		var odd []string
		for _, w := range strings.Fields(content) {
			if len(w) > 12 {
				odd = append(odd, w)
			}
		}
		return strings.Join(odd, ","), nil
	case "export":
		return "%PDF-FAKE%" + content, nil
	case "drawing":
		return "<svg>" + content + "</svg>", nil
	default:
		return "", fmt.Errorf("gdocs: unknown feature %q", kind)
	}
}

// ServeHTTP implements the wire protocol. Each request runs under its own
// context, so client-side timeouts and cancellations propagate into the
// store operations. Requests pass admission control first: a draining
// server and a client over its token-bucket rate both get a typed,
// retryable rejection (Retry-After + HeaderRetryable) that the mediating
// extension's backoff/breaker stack already knows how to absorb.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		rejectRetryable(w, http.StatusServiceUnavailable, time.Second, ErrDraining)
		metricAdmissionDrainRejects.Inc()
		return
	}
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	if s.adm != nil {
		if wait, ok := s.adm.allow(clientKey(r)); !ok {
			rejectRetryable(w, http.StatusTooManyRequests, wait, ErrRateLimited)
			metricAdmissionRateRejects.Inc()
			return
		}
	}
	ctx := r.Context()
	switch {
	case r.URL.Path == PathCreate && r.Method == http.MethodPost:
		if err := r.ParseForm(); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := s.Create(ctx, r.PostForm.Get(FieldDocID)); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		fmt.Fprint(w, "ok")

	case r.URL.Path == PathDoc && r.Method == http.MethodGet:
		q := r.URL.Query()
		docID := q.Get(FieldDocID)
		if sv := q.Get(FieldSince); sv != "" {
			since, err := strconv.Atoi(sv)
			if err != nil {
				http.Error(w, "gdocs: bad since version", http.StatusBadRequest)
				return
			}
			cu, ok, err := s.DeltasSince(ctx, docID, since)
			if err != nil {
				http.Error(w, err.Error(), http.StatusNotFound)
				return
			}
			if ok {
				w.Header().Set(HeaderDeltas, "1")
				w.Header().Set(HeaderDocVersion, strconv.Itoa(cu.Version))
				fmt.Fprint(w, cu.Encode())
				return
			}
			// History gap: fall through to the full-content response.
		}
		content, version, err := s.Content(ctx, docID)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.Header().Set(HeaderDocVersion, strconv.Itoa(version))
		fmt.Fprint(w, content)

	case r.URL.Path == PathDoc && r.Method == http.MethodPost:
		if err := r.ParseForm(); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		docID := r.PostForm.Get(FieldDocID)
		if docID == "" {
			docID = r.URL.Query().Get(FieldDocID)
		}
		baseVersion := -1
		if v := r.PostForm.Get(FieldVersion); v != "" {
			parsed, err := strconv.Atoi(v)
			if err != nil {
				http.Error(w, "gdocs: bad version", http.StatusBadRequest)
				return
			}
			baseVersion = parsed
		}
		saveID := r.Header.Get(HeaderSaveID)
		var (
			ack Ack
			err error
		)
		if r.PostForm.Has(FieldDocContents) {
			ack, err = s.setContents(ctx, docID, r.PostForm.Get(FieldDocContents), baseVersion, saveID)
		} else if r.PostForm.Has(FieldDelta) {
			ack, err = s.applyDelta(ctx, docID, r.PostForm.Get(FieldDelta), baseVersion, saveID)
		} else {
			http.Error(w, "gdocs: no docContents or delta", http.StatusBadRequest)
			return
		}
		switch {
		case errors.Is(err, errNotFound):
			http.Error(w, err.Error(), http.StatusNotFound)
		case errors.Is(err, errConflict):
			http.Error(w, err.Error(), http.StatusConflict)
		case errors.Is(err, errTooLarge):
			http.Error(w, err.Error(), http.StatusRequestEntityTooLarge)
		case err != nil:
			http.Error(w, err.Error(), http.StatusInternalServerError)
		default:
			fmt.Fprint(w, ack.Encode())
		}

	case r.Method == http.MethodPost &&
		(r.URL.Path == PathTranslate || r.URL.Path == PathSpell ||
			r.URL.Path == PathDrawing || r.URL.Path == PathExport):
		if err := r.ParseForm(); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		kind := map[string]string{
			PathTranslate: "translate",
			PathSpell:     "spell",
			PathDrawing:   "drawing",
			PathExport:    "export",
		}[r.URL.Path]
		out, err := s.featureReply(ctx, kind, r.PostForm.Get(FieldDocID))
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		fmt.Fprint(w, out)

	default:
		http.Error(w, "gdocs: unknown endpoint", http.StatusNotFound)
	}
}
