// Package gdocs simulates the 2011 Google Documents client/server update
// protocol that Huang & Evans reverse engineered (§IV-A): an editing
// session is opened with a POST to /Doc?docID=id; the first save carries
// the entire document in the docContents field; every subsequent save
// carries only a delta; and the server answers each update with an Ack
// holding contentFromServer and contentFromServerHash. The server is, as
// the paper puts it, "a glorified data store": none of its computation
// depends on the document text, which is exactly why the mediating
// extension can swap the text for ciphertext.
//
// The package provides both sides: a Server (an http.Handler backed by an
// in-memory document store, with the feature endpoints the paper lists),
// and a Client that simulates the browser application (local edits, save,
// autosave, load).
package gdocs

import (
	"fmt"
	"hash/fnv"
	"net/url"
	"strconv"
)

// Protocol paths. /Doc mirrors the paper's http://docs.google.com/Doc
// endpoint; the feature endpoints model the server-side features of
// §VII-A that stop working once the server only sees ciphertext.
const (
	PathDoc       = "/Doc"
	PathCreate    = "/DocCreate"
	PathTranslate = "/Translate"
	PathSpell     = "/SpellCheck"
	PathDrawing   = "/Drawing"
	PathExport    = "/ExportAs"
)

// Form field names, as in the reverse-engineered protocol.
const (
	FieldDocID       = "docID"
	FieldDocContents = "docContents"
	FieldDelta       = "delta"
	FieldVersion     = "version"
	// FieldSince is a GET /Doc query parameter: when present, the server
	// answers with the deltas applied after that version (a catch-up fetch)
	// instead of the full content, when its history still covers the span.
	FieldSince = "since"
	// FieldCatchupDelta is the repeated field carrying each missed delta in
	// a catch-up response body, oldest first.
	FieldCatchupDelta = "d"
)

// Response headers.
const (
	// HeaderDocVersion carries the stored document version on GET /Doc
	// responses (a simulation convenience; the 2011 protocol embedded the
	// version in the page).
	HeaderDocVersion = "X-Doc-Version"
	// HeaderDegraded marks a response the mediating extension synthesized
	// locally while a document's circuit breaker was open: the save is
	// queued, not yet durable on the server.
	HeaderDegraded = "X-Privedit-Degraded"
	// HeaderDeltas marks a GET /Doc response whose body is a form-encoded
	// catch-up (FieldVersion plus zero or more FieldCatchupDelta entries,
	// oldest first) rather than raw document content.
	HeaderDeltas = "X-Doc-Deltas"
	// HeaderSaveID carries a client-chosen idempotency token on update
	// POSTs. If the server already holds the token in a document's recent
	// history it acknowledges the earlier application instead of applying
	// the update twice — which makes "response lost but save applied"
	// faults safe to retry.
	HeaderSaveID = "X-Privedit-Save-Id"
	// HeaderRetryable marks a rejection the server considers transient —
	// an admission-control 429/503 during rate limiting or drain. The
	// mediator's resilience stack treats such responses as retry-worthy
	// backpressure and honors the accompanying Retry-After hint.
	HeaderRetryable = "X-Privedit-Retryable"
	// HeaderClient carries the requester's self-declared client id, the
	// key the server's per-client token-bucket rate limiter buckets by
	// (falling back to the remote address when absent).
	HeaderClient = "X-Privedit-Client"
)

// Catchup is a parsed catch-up response: the deltas applied after the
// requested version, oldest first, and the version they lead to.
type Catchup struct {
	Deltas  []string
	Version int
}

// Encode serializes the catch-up as a form-encoded body.
func (c Catchup) Encode() string {
	v := url.Values{}
	v.Set(FieldVersion, strconv.Itoa(c.Version))
	for _, d := range c.Deltas {
		v.Add(FieldCatchupDelta, d)
	}
	return v.Encode()
}

// ParseCatchup decodes a form-encoded catch-up body.
func ParseCatchup(body string) (Catchup, error) {
	v, err := url.ParseQuery(body)
	if err != nil {
		return Catchup{}, fmt.Errorf("gdocs: parse catchup: %w", err)
	}
	version, err := strconv.Atoi(v.Get(FieldVersion))
	if err != nil {
		return Catchup{}, fmt.Errorf("gdocs: parse catchup version: %w", err)
	}
	return Catchup{Deltas: v[FieldCatchupDelta], Version: version}, nil
}

// Ack is the server's response to a content update. The paper found the
// client "works flawlessly when the values are replaced with an empty
// string for contentFromServer, and 0 for contentFromServerHash" — which
// is what the mediating extension does.
type Ack struct {
	ContentFromServer     string
	ContentFromServerHash uint32
	Version               int
}

// Encode serializes the Ack as a form-encoded body.
func (a Ack) Encode() string {
	v := url.Values{}
	v.Set("contentFromServer", a.ContentFromServer)
	v.Set("contentFromServerHash", strconv.FormatUint(uint64(a.ContentFromServerHash), 10))
	v.Set("version", strconv.Itoa(a.Version))
	return v.Encode()
}

// ParseAck decodes a form-encoded Ack body.
func ParseAck(body string) (Ack, error) {
	v, err := url.ParseQuery(body)
	if err != nil {
		return Ack{}, fmt.Errorf("gdocs: parse ack: %w", err)
	}
	hash, err := strconv.ParseUint(v.Get("contentFromServerHash"), 10, 32)
	if err != nil {
		return Ack{}, fmt.Errorf("gdocs: parse ack hash: %w", err)
	}
	version, err := strconv.Atoi(v.Get("version"))
	if err != nil {
		return Ack{}, fmt.Errorf("gdocs: parse ack version: %w", err)
	}
	return Ack{
		ContentFromServer:     v.Get("contentFromServer"),
		ContentFromServerHash: uint32(hash),
		Version:               version,
	}, nil
}

// ContentHash is the server's content digest (stands in for whatever the
// 2011 service used; the extension zeroes it out anyway).
func ContentHash(content string) uint32 {
	h := fnv.New32a()
	_, _ = h.Write([]byte(content))
	return h.Sum32()
}
