// Package buzzword simulates Adobe Buzzword as described in §III: "On
// every update, the client sends back the whole document content as a XML
// file encapsulated in a HTTP POST request. By encrypting the text
// embedded in <textRun> tags, we keep submitted document content secure."
//
// The document model is a list of styled text runs. The extension
// encrypts only the character data inside each <textRun> element, leaving
// the XML structure (styling, layout) intact so the service keeps
// functioning on the markup it actually needs.
package buzzword

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"privedit/internal/core"
)

// PathDoc is the document endpoint.
const PathDoc = "/buzzword/doc"

// TextRun is one styled run of document text.
type TextRun struct {
	XMLName xml.Name `xml:"textRun"`
	Style   string   `xml:"style,attr,omitempty"`
	Text    string   `xml:",chardata"`
}

// Document is the XML document the client posts on every update.
type Document struct {
	XMLName xml.Name  `xml:"doc"`
	ID      string    `xml:"id,attr"`
	Runs    []TextRun `xml:"textRun"`
}

// Marshal serializes the document.
func (d Document) Marshal() (string, error) {
	out, err := xml.Marshal(d)
	if err != nil {
		return "", fmt.Errorf("buzzword: marshal: %w", err)
	}
	return string(out), nil
}

// ParseDocument decodes a document.
func ParseDocument(raw string) (Document, error) {
	var d Document
	if err := xml.Unmarshal([]byte(raw), &d); err != nil {
		return Document{}, fmt.Errorf("buzzword: unmarshal: %w", err)
	}
	return d, nil
}

// Text returns the concatenated run text.
func (d Document) Text() string {
	var b strings.Builder
	for _, r := range d.Runs {
		b.WriteString(r.Text)
	}
	return b.String()
}

// Server is the simulated Buzzword backend: it stores the posted XML and
// serves it back, never interpreting run text.
type Server struct {
	mu   sync.Mutex
	docs map[string]string

	observed strings.Builder
	observe  bool
}

// NewServer creates an empty store.
func NewServer() *Server { return &Server{docs: make(map[string]string)} }

// EnableObservation records all content the server sees.
func (s *Server) EnableObservation() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.observe = true
}

// Observed returns everything the server has seen.
func (s *Server) Observed() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.observed.String()
}

// Doc returns the stored XML for id.
func (s *Server) Doc(id string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	raw, ok := s.docs[id]
	return raw, ok
}

// ServeHTTP implements POST (store whole document XML) and GET (fetch).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != PathDoc {
		http.Error(w, "buzzword: unknown path", http.StatusNotFound)
		return
	}
	switch r.Method {
	case http.MethodPost:
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		doc, err := ParseDocument(string(body))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		s.mu.Lock()
		if s.observe {
			s.observed.Write(body)
			s.observed.WriteByte('\n')
		}
		s.docs[doc.ID] = string(body)
		s.mu.Unlock()
		w.WriteHeader(http.StatusOK)
	case http.MethodGet:
		raw, ok := s.Doc(r.URL.Query().Get("id"))
		if !ok {
			http.Error(w, "buzzword: no such document", http.StatusNotFound)
			return
		}
		fmt.Fprint(w, raw)
	default:
		http.Error(w, "buzzword: method not allowed", http.StatusMethodNotAllowed)
	}
}

// Client posts whole documents and fetches them back.
type Client struct {
	httpc *http.Client
	base  string
}

// NewClient builds a client; httpc may carry the Extension as Transport.
func NewClient(httpc *http.Client, base string) *Client {
	return &Client{httpc: httpc, base: base}
}

// Save posts the whole document.
func (c *Client) Save(doc Document) error {
	raw, err := doc.Marshal()
	if err != nil {
		return err
	}
	resp, err := c.httpc.Post(c.base+PathDoc, "application/xml", strings.NewReader(raw))
	if err != nil {
		return fmt.Errorf("buzzword: post: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("buzzword: post status %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return nil
}

// Load fetches and parses a document.
func (c *Client) Load(id string) (Document, error) {
	resp, err := c.httpc.Get(c.base + PathDoc + "?id=" + id)
	if err != nil {
		return Document{}, fmt.Errorf("buzzword: get: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return Document{}, fmt.Errorf("buzzword: read: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return Document{}, fmt.Errorf("buzzword: get status %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return ParseDocument(string(body))
}

// Extension encrypts the character data of every <textRun> on the way out
// and decrypts it on the way in, leaving markup intact. Each run is its
// own container (runs are independently styled and reflowed by the app).
type Extension struct {
	base     http.RoundTripper
	password func(docID string) (string, core.Options, error)
}

var _ http.RoundTripper = (*Extension)(nil)

// NewExtension wraps base (nil for http.DefaultTransport).
func NewExtension(base http.RoundTripper, password func(docID string) (string, core.Options, error)) *Extension {
	if base == nil {
		base = http.DefaultTransport
	}
	return &Extension{base: base, password: password}
}

// Client returns an http.Client routed through the extension.
func (e *Extension) Client() *http.Client { return &http.Client{Transport: e} }

// encryptDoc and decryptDoc are deliberately separate functions: the
// outbound (encrypting) path must never share a body with the inbound
// (decrypting) one, so the taint analyzer can prove the document handed
// to the base transport is free of core.Decrypt output.

func (e *Extension) encryptDoc(raw string) (string, error) {
	doc, err := ParseDocument(raw)
	if err != nil {
		return "", err
	}
	password, opts, err := e.password(doc.ID)
	if err != nil {
		return "", err
	}
	for i := range doc.Runs {
		ed, err := core.NewEditor(password, opts)
		if err != nil {
			return "", err
		}
		ctxt, err := ed.Encrypt(doc.Runs[i].Text)
		if err != nil {
			return "", err
		}
		doc.Runs[i].Text = ctxt
	}
	return doc.Marshal()
}

func (e *Extension) decryptDoc(raw string) (string, error) {
	doc, err := ParseDocument(raw)
	if err != nil {
		return "", err
	}
	password, _, err := e.password(doc.ID)
	if err != nil {
		return "", err
	}
	for i := range doc.Runs {
		plain, err := core.Decrypt(password, doc.Runs[i].Text)
		if err != nil {
			return "", err
		}
		doc.Runs[i].Text = plain
	}
	return doc.Marshal()
}

// RoundTrip mediates Buzzword traffic.
func (e *Extension) RoundTrip(req *http.Request) (*http.Response, error) {
	if req.URL.Path != PathDoc {
		return blockedResp(req, "privedit: request blocked by extension"), nil
	}
	switch req.Method {
	case http.MethodPost:
		body, err := io.ReadAll(req.Body)
		req.Body.Close()
		if err != nil {
			return nil, fmt.Errorf("buzzword extension: read body: %w", err)
		}
		enc, err := e.encryptDoc(string(body))
		if err != nil {
			return blockedResp(req, "privedit: "+err.Error()), nil
		}
		clone := req.Clone(req.Context())
		clone.Body = io.NopCloser(strings.NewReader(enc))
		clone.ContentLength = int64(len(enc))
		return e.base.RoundTrip(clone)
	case http.MethodGet:
		resp, err := e.base.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return resp, nil
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, fmt.Errorf("buzzword extension: read response: %w", err)
		}
		plain, err := e.decryptDoc(string(raw))
		if err != nil {
			return blockedResp(req, "privedit: "+err.Error()), nil
		}
		resp.Body = io.NopCloser(strings.NewReader(plain))
		resp.ContentLength = int64(len(plain))
		resp.Header.Del("Content-Length")
		return resp, nil
	default:
		return blockedResp(req, "privedit: request blocked by extension"), nil
	}
}

func blockedResp(req *http.Request, msg string) *http.Response {
	return &http.Response{
		StatusCode:    http.StatusForbidden,
		Status:        "403 Forbidden",
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{"Content-Type": {"text/plain"}},
		Body:          io.NopCloser(bytes.NewReader([]byte(msg))),
		ContentLength: int64(len(msg)),
		Request:       req,
	}
}
