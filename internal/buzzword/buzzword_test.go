package buzzword

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"privedit/internal/core"
	"privedit/internal/crypt"
)

func pw(seed uint64) func(string) (string, core.Options, error) {
	return func(string) (string, core.Options, error) {
		return "doc-pw", core.Options{
			Scheme:     core.ConfidentialityOnly,
			BlockChars: 8,
			Nonces:     crypt.NewSeededNonceSource(seed),
		}, nil
	}
}

func sampleDoc() Document {
	return Document{
		ID: "memo-1",
		Runs: []TextRun{
			{Style: "bold", Text: "Quarterly results are catastrophic."},
			{Style: "normal", Text: " Do not tell the shareholders yet."},
		},
	}
}

func TestDocumentMarshalRoundTrip(t *testing.T) {
	d := sampleDoc()
	raw, err := d.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := ParseDocument(raw)
	if err != nil {
		t.Fatalf("ParseDocument: %v", err)
	}
	if got.ID != d.ID || len(got.Runs) != 2 {
		t.Fatalf("round trip = %+v", got)
	}
	if got.Runs[0].Text != d.Runs[0].Text || got.Runs[1].Style != "normal" {
		t.Errorf("runs = %+v", got.Runs)
	}
	if got.Text() != d.Text() {
		t.Errorf("Text = %q", got.Text())
	}
}

func TestParseDocumentErrors(t *testing.T) {
	if _, err := ParseDocument("<unclosed"); err == nil {
		t.Error("bad XML accepted")
	}
}

func TestPlainServer(t *testing.T) {
	s := NewServer()
	ts := httptest.NewServer(s)
	defer ts.Close()
	c := NewClient(ts.Client(), ts.URL)
	if err := c.Save(sampleDoc()); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := c.Load("memo-1")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.Text() != sampleDoc().Text() {
		t.Errorf("Load text = %q", got.Text())
	}
	if _, err := c.Load("missing"); err == nil {
		t.Error("missing doc accepted")
	}
}

func TestEncryptedRunsHideTextKeepMarkup(t *testing.T) {
	s := NewServer()
	s.EnableObservation()
	ts := httptest.NewServer(s)
	defer ts.Close()
	ext := NewExtension(ts.Client().Transport, pw(7))
	c := NewClient(ext.Client(), ts.URL)

	if err := c.Save(sampleDoc()); err != nil {
		t.Fatalf("Save: %v", err)
	}
	raw, ok := s.Doc("memo-1")
	if !ok {
		t.Fatal("doc not stored")
	}
	// Markup survives; text does not.
	if !strings.Contains(raw, "<textRun") || !strings.Contains(raw, `style="bold"`) {
		t.Errorf("markup lost: %q", raw)
	}
	for _, leak := range []string{"catastrophic", "shareholders", "Quarterly"} {
		if strings.Contains(raw, leak) {
			t.Errorf("plaintext %q stored on server", leak)
		}
		if strings.Contains(s.Observed(), leak) {
			t.Errorf("plaintext %q observed by server", leak)
		}
	}
	// Decrypting load restores the text.
	got, err := c.Load("memo-1")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.Text() != sampleDoc().Text() {
		t.Errorf("decrypted text = %q", got.Text())
	}
	if got.Runs[0].Style != "bold" {
		t.Errorf("style lost: %+v", got.Runs[0])
	}
}

func TestPerRunEncryption(t *testing.T) {
	// Each run is an independent container: same text in two runs must
	// yield different ciphertexts (randomized encryption).
	s := NewServer()
	ts := httptest.NewServer(s)
	defer ts.Close()
	ext := NewExtension(ts.Client().Transport, pw(8))
	c := NewClient(ext.Client(), ts.URL)
	doc := Document{ID: "d", Runs: []TextRun{{Text: "same text"}, {Text: "same text"}}}
	if err := c.Save(doc); err != nil {
		t.Fatalf("Save: %v", err)
	}
	raw, _ := s.Doc("d")
	stored, err := ParseDocument(raw)
	if err != nil {
		t.Fatalf("parse stored: %v", err)
	}
	if stored.Runs[0].Text == stored.Runs[1].Text {
		t.Error("identical runs encrypt identically")
	}
}

func TestUnknownRequestsBlocked(t *testing.T) {
	ts := httptest.NewServer(NewServer())
	defer ts.Close()
	ext := NewExtension(ts.Client().Transport, pw(9))
	resp, err := ext.Client().Get(ts.URL + "/buzzword/admin")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("status = %d, want 403", resp.StatusCode)
	}
}

func TestWrongPasswordFailsLoad(t *testing.T) {
	s := NewServer()
	ts := httptest.NewServer(s)
	defer ts.Close()
	ext := NewExtension(ts.Client().Transport, pw(10))
	c := NewClient(ext.Client(), ts.URL)
	if err := c.Save(sampleDoc()); err != nil {
		t.Fatalf("Save: %v", err)
	}
	wrong := NewExtension(ts.Client().Transport, func(string) (string, core.Options, error) {
		return "other", core.Options{Nonces: crypt.NewSeededNonceSource(2)}, nil
	})
	c2 := NewClient(wrong.Client(), ts.URL)
	if _, err := c2.Load("memo-1"); err == nil {
		t.Error("wrong-password load accepted")
	}
}

func TestEmptyRun(t *testing.T) {
	s := NewServer()
	ts := httptest.NewServer(s)
	defer ts.Close()
	ext := NewExtension(ts.Client().Transport, pw(11))
	c := NewClient(ext.Client(), ts.URL)
	doc := Document{ID: "e", Runs: []TextRun{{Text: ""}, {Text: "x"}}}
	if err := c.Save(doc); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := c.Load("e")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.Text() != "x" {
		t.Errorf("text = %q", got.Text())
	}
}
