// The plaintext-flow rule: the interprocedural taint analysis in
// internal/lint/taint, adapted to the lint driver. One whole-module
// analysis run is shared by every unit (and by the derived
// plaintext-package set of no-plaintext-log); findings are attributed to
// the unit that owns the sink's file so suppression and sorting behave
// like any other rule.
package lint

import (
	"privedit/internal/lint/taint"
)

// PlaintextFlow is the taint-flow rule: decrypted plaintext must never
// reach an untrusted-server or auxiliary-channel sink. Each finding
// carries the complete source→sink path, every hop with file:line.
var PlaintextFlow = &Analyzer{
	Name: "plaintext-flow",
	Doc:  "decrypted plaintext must not flow to network, trace, metric, or escaping-error sinks",
	Run:  runPlaintextFlow,
}

// TaintResult returns the whole-module taint analysis, computing it on
// first use. Units loaded via CheckDir are not part of it; they get a
// standalone analysis in runPlaintextFlow.
func (m *Module) TaintResult() *taint.Result {
	m.taintOnce.Do(func() {
		m.taintRes = taint.Analyze(m.Fset, m.basePkgs)
	})
	return m.taintRes
}

func taintPackage(u *Unit) *taint.Package {
	return &taint.Package{
		Path:   u.Path,
		Files:  u.Files,
		Pkg:    u.Pkg,
		Info:   u.Info,
		IsTest: u.IsTest,
	}
}

func runPlaintextFlow(u *Unit, m *Module, report reporter) {
	if u.XTest {
		return // external test packages do not ship
	}
	res := m.TaintResult()
	if !m.isModuleUnit(u) {
		// Fixture unit (CheckDir): analyze it standalone. Sources and
		// sinks are spec- and annotation-driven, so a fixture importing
		// real module packages still exercises the real boundary.
		res = taint.Analyze(m.Fset, []*taint.Package{taintPackage(u)})
	}
	own := make(map[string]bool)
	for _, f := range u.Files {
		if !u.IsTest[f] {
			own[m.Fset.Position(f.Pos()).Filename] = true
		}
	}
	for _, fnd := range res.Findings {
		if !own[m.Fset.Position(fnd.Pos).Filename] {
			continue
		}
		report(fnd.Pos, "plaintext reaches %s: %s", fnd.Sink, taint.RenderSteps(m.Fset, fnd.Steps, m.Root))
	}
}

func (m *Module) isModuleUnit(u *Unit) bool {
	for _, mu := range m.Units {
		if mu == u {
			return true
		}
	}
	return false
}

// PlaintextPkgs is the effective plaintext-bearing package set used by
// no-plaintext-log: the hand-written seed packages plus every internal
// package the taint analysis proves to receive plaintext. Keys are
// module-relative ("internal/core"). Deriving the set from reachability
// is what closes the drift hazard: a new package that starts handling
// decrypted bytes is banned from logging without anyone editing a list.
func (m *Module) PlaintextPkgs() map[string]bool {
	out := make(map[string]bool, len(plaintextSeedPkgs))
	for p := range plaintextSeedPkgs {
		out[p] = true
	}
	for path := range m.TaintResult().ReachablePkgs {
		rel := path
		if r, ok := cutPathPrefix(path, m.Path); ok {
			rel = r
		}
		// Only internal packages: cmd/ and examples/ run on the trusted
		// client and legitimately display plaintext to the local user.
		if rel == "internal" || hasPathPrefix(rel, "internal") {
			out[rel] = true
		}
	}
	return out
}

func cutPathPrefix(path, prefix string) (string, bool) {
	if path == prefix {
		return "", true
	}
	if len(path) > len(prefix) && path[:len(prefix)] == prefix && path[len(prefix)] == '/' {
		return path[len(prefix)+1:], true
	}
	return path, false
}

func hasPathPrefix(path, prefix string) bool {
	_, ok := cutPathPrefix(path, prefix)
	return ok
}
