package lint

import (
	"go/ast"
	"go/types"
)

// CtxFirst enforces the context discipline PR 2 introduced for the
// concurrent serving core, in two layers:
//
//  1. Position: anywhere in the module, a function or method that takes a
//     context.Context must take it as the first parameter (testing.T/B/F
//     and testing.TB helper parameters may precede it, matching the
//     convention for test helpers). A context buried mid-signature is how
//     cancellation quietly stops being threaded through call chains.
//
//  2. Contract: the server-facing store API — gdocs.Server.Create,
//     Content, SetContents, and ApplyDelta — must keep accepting a
//     context.Context first. These are the methods every mediated
//     round trip relies on for cancellation; dropping the parameter in a
//     refactor would silently sever client deadlines from store work.
var CtxFirst = &Analyzer{
	Name: "ctx-first",
	Doc:  "context.Context parameters must come first; gdocs.Server store methods must keep their ctx",
	Run:  runCtxFirst,
}

// ctxContract lists, per module package, the methods that must take a
// context.Context as their first parameter.
var ctxContract = map[string]map[string][]string{
	"internal/gdocs": {
		"Server": {"Create", "Content", "SetContents", "ApplyDelta"},
	},
}

func runCtxFirst(u *Unit, m *Module, report reporter) {
	// Layer 1: positional check over every function and literal.
	inspectFiles(u, false, func(f *ast.File, n ast.Node) bool {
		var ft *ast.FuncType
		switch fn := n.(type) {
		case *ast.FuncDecl:
			ft = fn.Type
		case *ast.FuncLit:
			ft = fn.Type
		default:
			return true
		}
		checkCtxPosition(u, ft, report)
		return true
	})

	// Layer 2: contract methods, on the non-test unit of listed packages.
	if u.XTest {
		return
	}
	contract, ok := ctxContract[modulePkg(u, m)]
	if !ok {
		return
	}
	for typeName, methods := range contract {
		obj := u.Pkg.Scope().Lookup(typeName)
		if obj == nil {
			report(u.Files[0].Name.Pos(), "ctx contract: type %s not found in package %s", typeName, u.Pkg.Path())
			continue
		}
		for _, methodName := range methods {
			sel, _, _ := types.LookupFieldOrMethod(types.NewPointer(obj.Type()), true, u.Pkg, methodName)
			fn, ok := sel.(*types.Func)
			if !ok {
				report(obj.Pos(), "ctx contract: %s.%s is missing; the store API must keep its context-taking methods", typeName, methodName)
				continue
			}
			params := fn.Type().(*types.Signature).Params()
			if params.Len() == 0 || !isContextType(params.At(0).Type()) {
				report(fn.Pos(), "ctx contract: %s.%s must take context.Context as its first parameter", typeName, methodName)
			}
		}
	}
}

// checkCtxPosition reports a context.Context parameter that is not first
// (ignoring leading testing helper parameters).
func checkCtxPosition(u *Unit, ft *ast.FuncType, report reporter) {
	if ft.Params == nil {
		return
	}
	idx := 0
	sawNonHelper := false
	for _, field := range ft.Params.List {
		tv, ok := u.Info.Types[field.Type]
		if !ok {
			return
		}
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isContextType(tv.Type) {
			if idx > 0 && sawNonHelper {
				report(field.Type.Pos(), "context.Context must be the first parameter (found at position %d)", idx+1)
			}
		} else if !isTestingHelperType(tv.Type) {
			sawNonHelper = true
		}
		idx += n
	}
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isTestingHelperType reports whether t is *testing.T, *testing.B,
// *testing.F, or testing.TB — parameters conventionally allowed before a
// context in test helpers.
func isTestingHelperType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "testing" {
		return false
	}
	switch obj.Name() {
	case "T", "B", "F", "TB":
		return true
	}
	return false
}
