package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// DeprecatedAPI keeps migrations honest: once an API carries a
// "Deprecated:" paragraph, the only sanctioned call sites are _test.go
// files (which pin the forwarders' behaviour until deletion). Non-test
// code calling a deprecated function or method either predates the
// migration — and should move to the replacement the paragraph names —
// or is new code reaching for an API already scheduled to disappear.
// Either way the build should say so, not a reviewer.
var DeprecatedAPI = &Analyzer{
	Name: "deprecated-api",
	Doc:  "non-test code must not call APIs marked Deprecated:",
	Run:  runDeprecatedAPI,
}

func runDeprecatedAPI(u *Unit, m *Module, report reporter) {
	index := deprecatedIndex(m, u)
	if len(index) == 0 {
		return
	}
	inspectFiles(u, true, func(f *ast.File, n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(u, call)
		if fn == nil {
			return true
		}
		if note, ok := index[fn.Pos()]; ok {
			report(call.Pos(), "call to deprecated %s — %s", fn.Name(), note)
		}
		return true
	})
}

// deprecatedIndex maps the name position of every function or method in
// the module whose doc comment carries a Deprecated: paragraph to that
// paragraph's first line. Positions are stable across the loader's two
// type-checking passes (plain and augmented packages share AST files), so
// a callee resolved through either pass finds its declaration here. The
// unit's own files are indexed too, covering fixture units from CheckDir
// that are not registered in m.Units.
func deprecatedIndex(m *Module, u *Unit) map[token.Pos]string {
	idx := make(map[token.Pos]string)
	add := func(files []*ast.File) {
		for _, f := range files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Doc == nil {
					continue
				}
				if note, ok := deprecationNote(fd.Doc.Text()); ok {
					idx[fd.Name.Pos()] = note
				}
			}
		}
	}
	for _, mu := range m.Units {
		add(mu.Files)
	}
	add(u.Files)
	return idx
}

// deprecationNote extracts the first line of a doc comment's
// "Deprecated:" paragraph, per the godoc convention: the marker must
// start a line.
func deprecationNote(docText string) (string, bool) {
	for _, line := range strings.Split(docText, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "Deprecated:") {
			return strings.TrimSpace(line), true
		}
	}
	return "", false
}
