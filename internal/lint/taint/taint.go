// Package taint is an interprocedural taint-flow analysis that statically
// checks the invariant the paper's whole security argument (§V-A/§V-B)
// rests on: decrypted plaintext never crosses the untrusted-server
// boundary. Everything that reaches the cloud — transport request bodies,
// the gdocs/bespin/buzzword client call surfaces — and every unencrypted
// auxiliary channel — trace annotations, span names, metric labels, error
// strings escaping exported APIs — is a sink; the outputs of the
// decryption kernels and every struct field annotated //taint:source are
// sources; the encrypt-then-encode commit path is declared sanctioned
// with //taint:sanitizer annotations. The engine computes per-function
// summaries (which inputs reach which outputs and sinks, at struct-field
// granularity) over the module call graph, iterates them to a fixpoint,
// and reports each violation as a complete source→sink path.
//
// The analysis is stdlib-only (go/ast + go/types, like the rest of the
// lint suite) and deliberately input-agnostic: callers hand it
// type-checked packages, so the same engine runs over the real module and
// over golden testdata fixtures.
//
// Known unsoundness (documented in DESIGN.md §14): reflection, taint
// through package-level variables, interface dispatch (resolved only for
// interfaces defined in the analyzed packages; calls through external
// interfaces like io.Closer fall back to default propagation plus the
// explicit sink table), taint written through io.Writer-style function
// arguments (method receivers are tracked), method values passed across
// function boundaries, numeric/bool values (lengths and offsets are
// deemed clean; single bytes and runes do carry taint), and error values
// built by anything other than the fmt/errors/strconv content-embedding
// constructors.
package taint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Package is one type-checked analysis input. The lint driver adapts its
// own units into this shape.
type Package struct {
	Path   string
	Files  []*ast.File
	Pkg    *types.Package
	Info   *types.Info
	IsTest map[*ast.File]bool // files to skip (test code does not ship)
}

// Step is one hop of a source→sink path.
type Step struct {
	Pos  token.Pos `json:"-"`
	Note string    `json:"note"`
}

// Finding is one proven source→sink flow. Steps[0] is the source and the
// last step is the sink; every step carries a position.
type Finding struct {
	Sink  string // sink description, e.g. "trace annotation"
	Pos   token.Pos
	Steps []Step
}

// Result is the outcome of one Analyze call.
type Result struct {
	Findings []Finding
	// ReachablePkgs is the set of package paths (as given in Package.Path)
	// where source-rooted taint was observed or into which tainted values
	// were passed: the machine-derived "plaintext-bearing package" set.
	ReachablePkgs map[string]bool
	// Functions is the number of function bodies analyzed, Passes the
	// number of global fixpoint passes (diagnostics for the CI budget).
	Functions int
	Passes    int
}

// sourceSpec marks a function as a taint source independent of its body.
type sourceSpec struct {
	desc      string
	results   []int // result indices that return tainted data
	outParams []int // parameter indices written with tainted data (e.g. PRP.Decrypt dst)
}

// sinkSpec marks function parameters as crossing the trust boundary.
type sinkSpec struct {
	desc     string
	params   []int // parameter indices that are sinks
	variadic bool  // the trailing variadic parameter is a sink too
}

// builtinSources are the decryption kernels of the scheme: the Dec
// surfaces of §V-A. Keys are symbol keys (see symbolKey).
var builtinSources = map[string]*sourceSpec{
	"privedit/internal/core.Decrypt":                {desc: "core.Decrypt plaintext", results: []int{0}},
	"privedit/internal/core.DecryptWith":            {desc: "core.DecryptWith plaintext", results: []int{0}},
	"privedit/internal/core.Editor.Plaintext":       {desc: "Editor.Plaintext", results: []int{0}},
	"privedit/internal/blockdoc.Document.Plaintext": {desc: "Document.Plaintext", results: []int{0}},
	"privedit/internal/crypt.PRP.Decrypt":           {desc: "PRP.Decrypt output", outParams: []int{0}},
	"privedit/internal/crypt.WidePRP.Decrypt":       {desc: "WidePRP.Decrypt output", outParams: []int{0}},
}

// builtinSinks are the boundary crossings: data handed to any of these
// leaves the encryption envelope.
var builtinSinks = map[string]*sinkSpec{
	// Untrusted-server client surfaces: whatever these carry is stored by
	// the provider verbatim.
	"privedit/internal/gdocs.Client.Insert":       {desc: "gdocs server (Insert text)", params: []int{1}},
	"privedit/internal/gdocs.Client.Replace":      {desc: "gdocs server (Replace text)", params: []int{2}},
	"privedit/internal/gdocs.Client.SetText":      {desc: "gdocs server (SetText)", params: []int{0}},
	"privedit/internal/gdocs.Client.SaveRawDelta": {desc: "gdocs server (raw delta)", params: []int{0}},
	"privedit/internal/bespin.Client.Save":        {desc: "bespin server (Save)", params: []int{0, 1}},
	"privedit/internal/buzzword.Client.Save":      {desc: "buzzword server (Save)", params: []int{0}},
	// Transport request bodies (netsim carries exactly these bytes).
	"net/http.NewRequest":            {desc: "HTTP request body", params: []int{2}},
	"net/http.NewRequestWithContext": {desc: "HTTP request body", params: []int{3}},
	"net/http.Post":                  {desc: "HTTP request body", params: []int{2}},
	"net/http.PostForm":              {desc: "HTTP request body", params: []int{1}},
	"net/http.Client.Post":           {desc: "HTTP request body", params: []int{2}},
	"net/http.Client.PostForm":       {desc: "HTTP request body", params: []int{1}},
	// Any round-trip through the http.RoundTripper interface hands the
	// request to a transport chain the analysis treats as untrusted:
	// dispatch through external interfaces is not resolved (see DESIGN.md
	// §14), so the interface method itself is the boundary.
	"net/http.RoundTripper.RoundTrip":                   {desc: "HTTP transport round-trip", params: []int{0}},
	"privedit/internal/netsim.DelayTransport.RoundTrip": {desc: "simulated network transport", params: []int{0}},
	"privedit/internal/netsim.FaultTransport.RoundTrip": {desc: "simulated network transport", params: []int{0}},
	// Unencrypted auxiliary channels (the MessageGuard lesson): traces,
	// span names, metric names and label values.
	"privedit/internal/trace.Span.Annotate":     {desc: "trace annotation", params: []int{0, 1}},
	"privedit/internal/trace.Start":             {desc: "span name", params: []int{1}},
	"privedit/internal/trace.Tracer.Root":       {desc: "span name", params: []int{1}},
	"privedit/internal/obs.NewCounter":          {desc: "metric name/label", params: []int{0}, variadic: true},
	"privedit/internal/obs.NewGauge":            {desc: "metric name/label", params: []int{0}, variadic: true},
	"privedit/internal/obs.Registry.NewCounter": {desc: "metric name/label", params: []int{0}, variadic: true},
	"privedit/internal/obs.Registry.NewGauge":   {desc: "metric name/label", params: []int{0}, variadic: true},
	"privedit/internal/obs.Registry.Exemplar":   {desc: "metric name/label", params: []int{0}, variadic: true},
}

// errorEscapeSink is the description used when a tainted error value is
// returned from an exported function: errors ride HTTP responses and
// process logs, outside the encryption envelope.
const errorEscapeSink = "error escaping exported API"

// Analyze runs the full interprocedural analysis over the given packages.
// All packages must share fset. Deterministic: same inputs, same output
// order.
func Analyze(fset *token.FileSet, pkgs []*Package) *Result {
	a := newAnalyzer(fset, pkgs)
	a.run()
	return a.result()
}

// symbolKey names a function for the spec tables: "pkgpath.Func" for
// package functions, "pkgpath.Type.Method" for methods (pointer receivers
// are normalized away). Generic instantiations key as their origin.
func symbolKey(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	if o := fn.Origin(); o != nil {
		fn = o
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			// Interface method: key on the interface's package+name is not
			// possible without the named type; fall back to pkg.Method.
			if fn.Pkg() != nil {
				return fn.Pkg().Path() + "." + fn.Name()
			}
			return fn.Name()
		}
		obj := named.Obj()
		if obj.Pkg() != nil {
			return obj.Pkg().Path() + "." + obj.Name() + "." + fn.Name()
		}
		return obj.Name() + "." + fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Path() + "." + fn.Name()
	}
	return fn.Name()
}

// taintCapable reports whether a value of type t can carry plaintext:
// strings, bytes, runes (single characters are content), errors,
// interfaces, and aggregates containing them. Plain numeric and boolean
// types cannot — which is what makes length/offset-only diagnostics
// provably clean.
func taintCapable(t types.Type) bool {
	return capable(t, make(map[types.Type]bool))
}

func capable(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Basic:
		switch u.Kind() {
		case types.String, types.UntypedString, types.Uint8, types.Int32, types.UntypedRune:
			return true
		}
		return false
	case *types.Slice:
		return capable(u.Elem(), seen)
	case *types.Array:
		return capable(u.Elem(), seen)
	case *types.Map:
		return capable(u.Key(), seen) || capable(u.Elem(), seen)
	case *types.Chan:
		return capable(u.Elem(), seen)
	case *types.Pointer:
		return capable(u.Elem(), seen)
	case *types.Interface:
		return true // includes error and any
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if capable(u.Field(i).Type(), seen) {
				return true
			}
		}
		return false
	default:
		// Signatures, tuples, type params: conservatively capable.
		_, isSig := u.(*types.Signature)
		return !isSig
	}
}

// RenderSteps formats a path as "note @ file:line -> ...", with file paths
// made relative to root when possible.
func RenderSteps(fset *token.FileSet, steps []Step, root string) string {
	var b strings.Builder
	for i, s := range steps {
		if i > 0 {
			b.WriteString(" -> ")
		}
		p := fset.Position(s.Pos)
		file := p.Filename
		if root != "" {
			if rel, ok := strings.CutPrefix(file, root+"/"); ok {
				file = rel
			}
		}
		fmt.Fprintf(&b, "%s @ %s:%d", s.Note, file, p.Line)
	}
	return b.String()
}
