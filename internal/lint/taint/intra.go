// The intraprocedural half of the engine: abstract evaluation of one
// function body. Values are tracked per named object at struct-field
// granularity; the inputs start as symbolic taints, sources create
// concrete (source-rooted) facts, and the body is re-executed until the
// state stops changing (loops propagate through iteration). Flow
// recording is monotone and deduplicated, so re-execution is idempotent.
package taint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// origin is one reason a value is tainted: either "input #input (field)
// was tainted at entry" (symbolic, used to build summaries) or "a source
// was read" (input == -1, used to report findings). steps records the
// hops taken since.
type origin struct {
	input int
	field string
	steps []Step
}

// fact is a set of origins.
type fact struct {
	origins []origin
}

// originKey deduplicates origins within a fact.
type originKey struct {
	input int
	field string
	src   token.Pos // first step position, NoPos for bare symbolic origins
}

func (o origin) key() originKey {
	k := originKey{input: o.input, field: o.field}
	if len(o.steps) > 0 {
		k.src = o.steps[0].Pos
	}
	return k
}

// addOrigin merges o into f, reporting whether f changed.
func (f *fact) addOrigin(o origin) bool {
	if len(f.origins) >= maxOriginsPerFact {
		return false
	}
	k := o.key()
	for _, old := range f.origins {
		if old.key() == k {
			return false
		}
	}
	f.origins = append(f.origins, o)
	return true
}

func mergeFacts(a, b *fact) (*fact, bool) {
	if b == nil || len(b.origins) == 0 {
		return a, false
	}
	if a == nil {
		a = &fact{}
	}
	changed := false
	for _, o := range b.origins {
		if a.addOrigin(o) {
			changed = true
		}
	}
	return a, changed
}

// binding is a method value: fn bound to a receiver abstraction.
type binding struct {
	fn   *types.Func
	recv *val
}

// val is the abstract value of an expression or object.
type val struct {
	symInput int    // -1, or: this value IS input #symInput...
	symField string // ...projected at this field ("" = the whole input)
	whole    *fact
	fields   map[string]*fact
	bound    *binding
}

func newVal() *val { return &val{symInput: -1} }

func (v *val) isClean() bool {
	return v == nil || (v.symInput < 0 && v.whole == nil && len(v.fields) == 0)
}

// hasConcrete reports whether v carries any source-rooted origin.
func (v *val) hasConcrete() bool {
	if v == nil {
		return false
	}
	has := func(f *fact) bool {
		if f == nil {
			return false
		}
		for _, o := range f.origins {
			if o.input == -1 {
				return true
			}
		}
		return false
	}
	if has(v.whole) {
		return true
	}
	for _, f := range v.fields {
		if has(f) {
			return true
		}
	}
	return false
}

// collapse folds a val into a single fact (whole + every field).
func collapse(v *val) *fact {
	if v == nil {
		return nil
	}
	out := &fact{}
	if v.symInput >= 0 {
		out.addOrigin(origin{input: v.symInput, field: v.symField})
	}
	mergeInto := func(f *fact) {
		if f == nil {
			return
		}
		for _, o := range f.origins {
			out.addOrigin(o)
		}
	}
	mergeInto(v.whole)
	for _, name := range sortedFieldNames(v.fields) {
		mergeInto(v.fields[name])
	}
	if len(out.origins) == 0 {
		return nil
	}
	return out
}

func sortedFieldNames(m map[string]*fact) []string {
	if len(m) == 0 {
		return nil
	}
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// coverOrigins returns the origins under which the given field of v (""
// = any part of v) is tainted. Symbolic inputs yield symbolic origins.
func coverOrigins(v *val, field string) []origin {
	if v == nil {
		return nil
	}
	var out []origin
	if v.symInput >= 0 {
		eff := v.symField
		if eff == "" {
			eff = field
		}
		out = append(out, origin{input: v.symInput, field: eff})
	}
	if v.whole != nil {
		out = append(out, v.whole.origins...)
	}
	if field != "" {
		if f := v.fields[field]; f != nil {
			out = append(out, f.origins...)
		}
	} else {
		for _, name := range sortedFieldNames(v.fields) {
			out = append(out, v.fields[name].origins...)
		}
	}
	return out
}

// extend returns o with extra steps appended (copy-on-write, capped).
func (o origin) extend(steps ...Step) origin {
	if len(steps) == 0 {
		return o
	}
	n := len(o.steps) + len(steps)
	if n > maxStepsPerPath {
		n = maxStepsPerPath
	}
	out := make([]Step, 0, n)
	out = append(out, o.steps...)
	for _, s := range steps {
		if len(out) >= maxStepsPerPath {
			break
		}
		out = append(out, s)
	}
	return origin{input: o.input, field: o.field, steps: out}
}

// evalCtx is the per-function evaluation state.
type evalCtx struct {
	a  *analyzer
	fi *funcInfo

	state map[types.Object]*val
	// closures maps objects holding a *ast.FuncLit value to the literal.
	closures map[types.Object]*ast.FuncLit

	inClosure   bool
	iterChanged bool
}

// analyzeFunc (re)computes fi's summary and findings.
func (a *analyzer) analyzeFunc(fi *funcInfo) {
	ec := &evalCtx{
		a:        a,
		fi:       fi,
		state:    make(map[types.Object]*val),
		closures: make(map[types.Object]*ast.FuncLit),
	}
	for i, in := range fi.inputs {
		// Scalar inputs (counts, offsets, flags) cannot carry content, so
		// they never get a symbolic identity: flows conditioned on them
		// would be vacuous and only manufacture false error-escape paths.
		if !taintCapable(in.Type()) {
			continue
		}
		ec.state[in] = &val{symInput: i}
	}
	for it := 0; it < maxIntraIterations; it++ {
		ec.iterChanged = false
		ec.execStmt(fi.decl.Body)
		if !ec.iterChanged {
			break
		}
	}
}

// --- state management -------------------------------------------------

func (ec *evalCtx) lookup(obj types.Object) *val {
	if obj == nil {
		return nil
	}
	return ec.state[obj]
}

// mergeState merges v into obj's state (monotone), returning nothing;
// iterChanged is set when anything was added.
func (ec *evalCtx) mergeState(obj types.Object, v *val) {
	if obj == nil || obj.Name() == "_" || v.isClean() && (v == nil || v.bound == nil) {
		return
	}
	old := ec.state[obj]
	if old == nil {
		old = newVal()
		ec.state[obj] = old
	}
	if v == nil {
		return
	}
	// Symbolic identity is never overwritten; concrete taint accumulates.
	if v.symInput >= 0 && old.symInput < 0 && old != v {
		// Aliasing an input: fold as whole-of-that-input taint.
		if f, ch := mergeFacts(old.whole, &fact{origins: []origin{{input: v.symInput, field: v.symField}}}); ch {
			old.whole = f
			ec.iterChanged = true
		}
	}
	if f, ch := mergeFacts(old.whole, v.whole); ch {
		old.whole = f
		ec.iterChanged = true
	}
	for _, name := range sortedFieldNames(v.fields) {
		if old.fields == nil {
			old.fields = make(map[string]*fact)
		}
		if f, ch := mergeFacts(old.fields[name], v.fields[name]); ch {
			old.fields[name] = f
			ec.iterChanged = true
		}
	}
	if v.bound != nil && old.bound == nil {
		old.bound = v.bound
		ec.iterChanged = true
	}
}

// mergeField merges a fact into one field of obj's state.
func (ec *evalCtx) mergeField(obj types.Object, field string, f *fact) {
	if obj == nil || obj.Name() == "_" || f == nil || len(f.origins) == 0 {
		return
	}
	old := ec.state[obj]
	if old == nil {
		old = newVal()
		ec.state[obj] = old
	}
	if old.fields == nil {
		old.fields = make(map[string]*fact)
	}
	if nf, ch := mergeFacts(old.fields[field], f); ch {
		old.fields[field] = nf
		ec.iterChanged = true
	}
}

// --- helpers ----------------------------------------------------------

func (ec *evalCtx) pos(p token.Pos) token.Position { return ec.a.fset.Position(p) }

func mergeVals(vs ...*val) *val {
	out := newVal()
	for _, v := range vs {
		if v == nil {
			continue
		}
		if v.symInput >= 0 {
			f, _ := mergeFacts(out.whole, &fact{origins: []origin{{input: v.symInput, field: v.symField}}})
			out.whole = f
		}
		if v.whole != nil {
			f, _ := mergeFacts(out.whole, v.whole)
			out.whole = f
		}
		for _, name := range sortedFieldNames(v.fields) {
			if out.fields == nil {
				out.fields = make(map[string]*fact)
			}
			f, _ := mergeFacts(out.fields[name], v.fields[name])
			out.fields[name] = f
		}
		if v.bound != nil && out.bound == nil {
			out.bound = v.bound
		}
	}
	if out.isClean() && out.bound == nil {
		return nil
	}
	return out
}

// factVal wraps a fact as a whole-value val.
func factVal(f *fact) *val {
	if f == nil || len(f.origins) == 0 {
		return nil
	}
	return &val{symInput: -1, whole: f}
}
