// The interprocedural half of the engine: a registry of every function
// body in the analyzed packages, per-function summaries, and the global
// fixpoint that iterates summary computation until nothing changes.
//
// A summary answers, for one function: which inputs (receiver + params,
// at struct-field granularity) flow to which outputs (results, writes
// through pointer-like inputs), which inputs reach a sink inside the
// function or its callees, and which flows happen unconditionally because
// a source lives inside. Summaries are monotone — entries are only ever
// added — so the fixpoint terminates.
package taint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Caps keep pathological inputs from blowing up the fixpoint. They are
// far above anything the real module produces.
const (
	maxOriginsPerFact  = 8
	maxStepsPerPath    = 24
	maxCondSinksPerFn  = 64
	maxFindings        = 400
	maxGlobalPasses    = 24
	maxIntraIterations = 16
)

// flowCond is the condition under which a summary flow fires: taint on
// input (receiver first, then params), restricted to one field when field
// is non-empty. input == -1 means unconditional (source inside).
type flowCond struct {
	input int
	field string
}

// unconditional is the flowCond of source-rooted flows.
var unconditional = flowCond{input: -1}

// sumKey addresses one output slot of a summary: result index r for
// 0 <= r < numResults, or numResults+i for writes through input i.
// outField restricts the flow to one field of the output ("" = whole).
type sumKey struct {
	out      int
	outField string
}

// flowTmpl is the recorded provenance of one summary flow: the hops taken
// inside the function (and its callees) from the condition to the output.
type flowTmpl struct {
	steps []Step
}

// condSink is a sink reached inside a function (or transitively in its
// callees) whenever the condition input is tainted at a call site.
type condSink struct {
	cond  flowCond
	desc  string
	pos   token.Pos
	steps []Step
}

// fwdEdge is one conditional taint hand-off: if the enclosing function's
// input callerIdx is tainted, the callee's input calleeIdx receives it.
// Tracking the indices (rather than just "some argument was input-
// derived") keeps the reachable-package set honest: a helper that takes
// plaintext in one parameter and a metric name in another does not drag
// the metrics package into the plaintext-bearing set.
type fwdEdge struct {
	callee    *types.Func
	calleeIdx int
	callerIdx int
}

// summary is one function's interprocedural behavior.
type summary struct {
	numResults int
	numInputs  int
	flows      map[sumKey]map[flowCond]*flowTmpl
	sinks      []*condSink
	// forwards records which callee inputs receive which of this
	// function's inputs, for the reachable-package derivation.
	forwards map[fwdEdge]bool
}

func newSummary(numResults, numInputs int) *summary {
	return &summary{
		numResults: numResults,
		numInputs:  numInputs,
		flows:      make(map[sumKey]map[flowCond]*flowTmpl),
		forwards:   make(map[fwdEdge]bool),
	}
}

// addFlow records cond -> out; returns true if the summary changed.
// The first template for a given (out, cond) pair wins, keeping paths
// stable across fixpoint passes.
func (s *summary) addFlow(out sumKey, cond flowCond, tmpl *flowTmpl) bool {
	m := s.flows[out]
	if m == nil {
		m = make(map[flowCond]*flowTmpl)
		s.flows[out] = m
	}
	if _, ok := m[cond]; ok {
		return false
	}
	m[cond] = tmpl
	return true
}

// addSink records a conditional sink; returns true if new. Sinks are
// deduplicated by (cond, pos) so recursion cannot grow them unboundedly.
func (s *summary) addSink(cs *condSink) bool {
	if len(s.sinks) >= maxCondSinksPerFn {
		return false
	}
	for _, old := range s.sinks {
		if old.cond == cs.cond && old.pos == cs.pos {
			return false
		}
	}
	s.sinks = append(s.sinks, cs)
	return true
}

// funcInfo is one analyzable function body.
type funcInfo struct {
	fn   *types.Func
	decl *ast.FuncDecl
	pkg  *Package
	// inputs: receiver (if any) followed by parameters, in order.
	inputs  []*types.Var
	results []*types.Var
	sum     *summary
	// sanitizer/source verb from annotations ("" if none).
	verb string
}

type analyzer struct {
	fset *token.FileSet
	pkgs []*Package

	funcs   map[*types.Func]*funcInfo
	ordered []*funcInfo // deterministic analysis order (by position)
	annots  *annotations

	// ifaceImpls caches interface-method -> concrete implementations.
	ifaceImpls map[*types.Func][]*funcInfo
	namedTypes []types.Type // all named (non-interface) types in the packages
	// analyzedPkgs are the *types.Package objects under analysis; dispatch
	// is only resolved for interfaces defined in one of them.
	analyzedPkgs map[*types.Package]bool

	findings  []Finding
	seen      map[findingKey]bool
	reachable map[string]bool
	// taintedCallees accumulates which function inputs were observed to
	// receive concrete (source-rooted) taint, for the reachability
	// closure. Index -1 means the taint originates inside the body.
	taintedCallees map[*types.Func]map[int]bool

	changed bool // set when any summary grows during a pass
	passes  int
}

type findingKey struct {
	sinkPos   token.Pos
	sourcePos token.Pos
}

func newAnalyzer(fset *token.FileSet, pkgs []*Package) *analyzer {
	a := &analyzer{
		fset:           fset,
		pkgs:           pkgs,
		funcs:          make(map[*types.Func]*funcInfo),
		ifaceImpls:     make(map[*types.Func][]*funcInfo),
		seen:           make(map[findingKey]bool),
		reachable:      make(map[string]bool),
		taintedCallees: make(map[*types.Func]map[int]bool),
		analyzedPkgs:   make(map[*types.Package]bool),
	}
	for _, p := range pkgs {
		if p.Pkg != nil {
			a.analyzedPkgs[p.Pkg] = true
		}
	}
	a.annots = collectAnnotations(pkgs)
	a.buildRegistry()
	return a
}

// buildRegistry indexes every function body and named type.
func (a *analyzer) buildRegistry() {
	for _, p := range a.pkgs {
		for _, f := range p.Files {
			if p.IsTest[f] {
				continue
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := &funcInfo{fn: obj, decl: fd, pkg: p, verb: a.annots.funcs[obj]}
				sig := obj.Type().(*types.Signature)
				if recv := sig.Recv(); recv != nil {
					fi.inputs = append(fi.inputs, recv)
				}
				for i := 0; i < sig.Params().Len(); i++ {
					fi.inputs = append(fi.inputs, sig.Params().At(i))
				}
				for i := 0; i < sig.Results().Len(); i++ {
					fi.results = append(fi.results, sig.Results().At(i))
				}
				fi.sum = newSummary(len(fi.results), len(fi.inputs))
				a.funcs[obj] = fi
				a.ordered = append(a.ordered, fi)
			}
		}
		// Named types for interface resolution.
		scope := p.Pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			t := tn.Type()
			if _, isIface := t.Underlying().(*types.Interface); isIface {
				continue
			}
			a.namedTypes = append(a.namedTypes, t)
		}
	}
	sort.Slice(a.ordered, func(i, j int) bool {
		return a.ordered[i].decl.Pos() < a.ordered[j].decl.Pos()
	})
}

// run drives the global fixpoint: recompute every function's facts until
// no summary grows, then one final pass has already recorded all findings
// (findings are deduplicated, so re-recording is idempotent).
func (a *analyzer) run() {
	for pass := 0; pass < maxGlobalPasses; pass++ {
		a.passes++
		a.changed = false
		for _, fi := range a.ordered {
			a.analyzeFunc(fi)
		}
		if !a.changed {
			break
		}
	}
	a.computeReachability()
	sort.Slice(a.findings, func(i, j int) bool {
		fi, fj := a.findings[i], a.findings[j]
		if fi.Pos != fj.Pos {
			return fi.Pos < fj.Pos
		}
		if len(fi.Steps) > 0 && len(fj.Steps) > 0 {
			return fi.Steps[0].Pos < fj.Steps[0].Pos
		}
		return len(fi.Steps) < len(fj.Steps)
	})
}

func (a *analyzer) result() *Result {
	return &Result{
		Findings:      a.findings,
		ReachablePkgs: a.reachable,
		Functions:     len(a.ordered),
		Passes:        a.passes,
	}
}

// report records a finding (deduplicated by source and sink position).
func (a *analyzer) report(sinkDesc string, sinkPos token.Pos, steps []Step) {
	if len(a.findings) >= maxFindings {
		return
	}
	key := findingKey{sinkPos: sinkPos}
	if len(steps) > 0 {
		key.sourcePos = steps[0].Pos
	}
	if a.seen[key] {
		return
	}
	a.seen[key] = true
	a.findings = append(a.findings, Finding{Sink: sinkDesc, Pos: sinkPos, Steps: steps})
}

// markTainted notes that fn's input idx (or, for idx -1, fn's own body)
// holds concrete taint.
func (a *analyzer) markTainted(fn *types.Func, idx int) {
	if fn == nil {
		return
	}
	if a.taintedCallees[fn] == nil {
		a.taintedCallees[fn] = make(map[int]bool)
	}
	a.taintedCallees[fn][idx] = true
}

// computeReachability derives the plaintext-bearing package set: packages
// whose functions hold source-rooted taint, plus the closure over the
// per-input forward edges — a callee input joins the worklist only when
// the specific caller input feeding it is itself tainted. The result is
// a set of package paths, so worklist order does not affect the output.
func (a *analyzer) computeReachability() {
	type node struct {
		fn  *types.Func
		idx int
	}
	var queue []node
	seen := make(map[node]bool)
	push := func(n node) {
		if !seen[n] {
			seen[n] = true
			queue = append(queue, n)
		}
	}
	for fn, idxs := range a.taintedCallees {
		for idx := range idxs {
			push(node{fn, idx})
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if n.fn.Pkg() != nil {
			a.reachable[n.fn.Pkg().Path()] = true
		}
		fi := a.funcs[n.fn]
		if fi == nil {
			continue
		}
		for e := range fi.sum.forwards {
			if e.callerIdx == n.idx {
				push(node{e.callee, e.calleeIdx})
			}
		}
	}
}

// implementations resolves an interface method to the in-scope concrete
// methods that satisfy it, caching the answer. Only interfaces defined in
// the analyzed packages dispatch: for a one-method external interface
// like io.Closer, "every module type with a Close method" is statically
// unrelated to the value at the call site and would drown the report in
// impossible paths. External-interface crossings that matter (such as
// http.RoundTripper) are named in the sink table instead.
func (a *analyzer) implementations(m *types.Func) []*funcInfo {
	if impls, ok := a.ifaceImpls[m]; ok {
		return impls
	}
	if m.Pkg() == nil || !a.analyzedPkgs[m.Pkg()] {
		a.ifaceImpls[m] = nil
		return nil
	}
	var impls []*funcInfo
	sig, _ := m.Type().(*types.Signature)
	var iface *types.Interface
	if sig != nil && sig.Recv() != nil {
		iface, _ = sig.Recv().Type().Underlying().(*types.Interface)
	}
	if iface != nil {
		for _, t := range a.namedTypes {
			var impl types.Type
			switch {
			case types.Implements(t, iface):
				impl = t
			case types.Implements(types.NewPointer(t), iface):
				impl = types.NewPointer(t)
			default:
				continue
			}
			obj, _, _ := types.LookupFieldOrMethod(impl, true, m.Pkg(), m.Name())
			if fn, ok := obj.(*types.Func); ok {
				if fi := a.funcs[fn]; fi != nil {
					impls = append(impls, fi)
				}
			}
		}
		sort.Slice(impls, func(i, j int) bool { return impls[i].decl.Pos() < impls[j].decl.Pos() })
	}
	a.ifaceImpls[m] = impls
	return impls
}

// sourceSpecFor returns the source spec for a callee: the builtin table
// first, then //taint:source annotations (which taint every taint-capable
// non-error result).
func (a *analyzer) sourceSpecFor(fn *types.Func) *sourceSpec {
	if fn == nil {
		return nil
	}
	if spec, ok := builtinSources[symbolKey(fn)]; ok {
		return spec
	}
	if a.annots.funcs[originOf(fn)] == VerbSource {
		sig, _ := fn.Type().(*types.Signature)
		spec := &sourceSpec{desc: "//taint:source " + fn.Name()}
		if sig != nil {
			for i := 0; i < sig.Results().Len(); i++ {
				t := sig.Results().At(i).Type()
				if isErrorType(t) || !taintCapable(t) {
					continue
				}
				spec.results = append(spec.results, i)
			}
		}
		return spec
	}
	return nil
}

// isSanitizer reports whether calls to fn are the sanctioned
// encrypt-then-encode crossing.
func (a *analyzer) isSanitizer(fn *types.Func) bool {
	return fn != nil && a.annots.funcs[originOf(fn)] == VerbSanitizer
}

func originOf(fn *types.Func) *types.Func {
	if o := fn.Origin(); o != nil {
		return o
	}
	return fn
}

func isErrorType(t types.Type) bool {
	return types.AssignableTo(t, types.Universe.Lookup("error").Type())
}
