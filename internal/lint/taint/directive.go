// Taint annotations. The trust boundary is declared in source with
//
//	//taint:source [note]     — on a func: its results carry plaintext;
//	                            on a struct field: reads of it are plaintext
//	//taint:sanitizer [note]  — on a func: the encrypt-then-encode path;
//	                            its outputs are sanctioned ciphertext
//	//taint:clean [note]      — on a struct field: holds ciphertext/wire
//	                            form only. Reads are clean, and the claim
//	                            is enforced: a write of tainted data into
//	                            the field is itself reported as a sink.
//
// in the declaration's doc comment (or, for struct fields, the field's
// doc or trailing line comment). The optional note documents why; the
// verb list is closed — anything else spelled //taint:... is malformed
// and must be reported (under the lint suite's non-suppressible
// "directive" pseudo-rule), never silently ignored, because a typo'd
// annotation would otherwise change the taint verdict without a trace.
package taint

import (
	"errors"
	"go/ast"
	"go/types"
	"strings"
)

// ErrNotDirective reports that a comment is not a taint directive at all.
var ErrNotDirective = errors.New("not a taint directive")

// Directive verbs.
const (
	VerbSource    = "source"
	VerbSanitizer = "sanitizer"
	VerbClean     = "clean"
)

// ParseTaintDirective parses the text of a line comment (leading "//"
// already stripped). It returns ErrNotDirective for ordinary comments and
// a descriptive error for malformed taint directives.
func ParseTaintDirective(text string) (verb, note string, err error) {
	body, ok := strings.CutPrefix(strings.TrimLeft(text, " \t"), "taint:")
	if !ok {
		return "", "", ErrNotDirective
	}
	verb, note = cutSpace(body)
	switch verb {
	case VerbSource, VerbSanitizer, VerbClean:
		return verb, note, nil
	case "":
		return "", "", errors.New("//taint: directive is missing its verb (source, sanitizer, or clean)")
	default:
		return "", "", errors.New("unknown taint directive //taint:" + quoteTrunc(verb) + " (only source, sanitizer, and clean are supported)")
	}
}

// cutSpace splits s into its first whitespace-delimited token and the
// trimmed remainder.
func cutSpace(s string) (token, rest string) {
	s = strings.TrimSpace(s)
	i := strings.IndexAny(s, " \t")
	if i < 0 {
		return s, ""
	}
	return s[:i], strings.TrimSpace(s[i+1:])
}

// quoteTrunc quotes a possibly hostile string for an error message,
// keeping it short and printable.
func quoteTrunc(s string) string {
	const max = 40
	if len(s) > max {
		s = s[:max] + "..."
	}
	out := make([]rune, 0, len(s)+2)
	out = append(out, '"')
	for _, c := range s {
		if c < 0x20 || c == 0x7f {
			out = append(out, '?')
			continue
		}
		out = append(out, c)
	}
	return string(append(out, '"'))
}

// annotations holds the parsed //taint: markers of one analysis run.
type annotations struct {
	funcs  map[*types.Func]string // verb per annotated function
	fields map[*types.Var]bool    // struct fields annotated //taint:source
	clean  map[*types.Var]bool    // struct fields annotated //taint:clean
}

// collectAnnotations walks the packages' ASTs, resolving well-formed
// directives to their annotated objects. Malformed directives are NOT
// collected here — the lint driver reports them via ParseTaintDirective
// during its own directive sweep, so they can never silently change the
// verdict computed from the well-formed set.
func collectAnnotations(pkgs []*Package) *annotations {
	an := &annotations{
		funcs:  make(map[*types.Func]string),
		fields: make(map[*types.Var]bool),
		clean:  make(map[*types.Var]bool),
	}
	for _, p := range pkgs {
		for _, f := range p.Files {
			if p.IsTest[f] {
				continue
			}
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					verb := directiveIn(d.Doc)
					if verb == "" {
						continue
					}
					if obj, ok := p.Info.Defs[d.Name].(*types.Func); ok {
						an.funcs[obj] = verb
					}
				case *ast.GenDecl:
					an.collectFieldDirectives(p, d)
				}
			}
		}
	}
	return an
}

// collectFieldDirectives finds //taint:source and //taint:clean on struct
// fields of type declarations. Only those two verbs have a field meaning;
// a sanitizer verb on a field is treated as no annotation (the spelling is
// still well-formed, so it is not a directive error).
func (an *annotations) collectFieldDirectives(p *Package, d *ast.GenDecl) {
	for _, spec := range d.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok || st.Fields == nil {
			continue
		}
		for _, field := range st.Fields.List {
			verb := directiveIn(field.Doc)
			if verb == "" {
				verb = directiveIn(field.Comment)
			}
			if verb != VerbSource && verb != VerbClean {
				continue
			}
			for _, name := range field.Names {
				if obj, ok := p.Info.Defs[name].(*types.Var); ok {
					if verb == VerbSource {
						an.fields[obj] = true
					} else {
						an.clean[obj] = true
					}
				}
			}
		}
	}
}

// directiveIn returns the verb of the first well-formed taint directive
// in a comment group, or "".
func directiveIn(cg *ast.CommentGroup) string {
	if cg == nil {
		return ""
	}
	for _, c := range cg.List {
		text, ok := strings.CutPrefix(c.Text, "//")
		if !ok {
			continue
		}
		if verb, _, err := ParseTaintDirective(text); err == nil {
			return verb
		}
	}
	return ""
}
