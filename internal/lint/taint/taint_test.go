package taint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

func TestParseTaintDirective(t *testing.T) {
	cases := []struct {
		in      string
		verb    string
		note    string
		errPart string // "" = ok, "not" = ErrNotDirective, else substring of the error
	}{
		{"taint:source decrypted document body", VerbSource, "decrypted document body", ""},
		{"taint:sanitizer encrypt-then-encode commit path", VerbSanitizer, "encrypt-then-encode commit path", ""},
		{"taint:clean ciphertext mirror of the last save", VerbClean, "ciphertext mirror of the last save", ""},
		{"taint:source", VerbSource, "", ""},
		{" \t taint:clean leading whitespace is fine", VerbClean, "leading whitespace is fine", ""},
		{"taint:source   extra   spaces collapse around the verb only", VerbSource, "extra   spaces collapse around the verb only", ""},
		{"taint: source space before the verb is tolerated", VerbSource, "space before the verb is tolerated", ""},
		{"just a comment", "", "", "not"},
		{"lint:ignore nonce-source other family", "", "", "not"},
		{"taints:source near miss", "", "", "not"},
		{"taint:", "", "", "missing its verb"},
		{"taint:sink transport body", "", "", "unknown taint directive"},
		{"taint:Source case matters", "", "", "unknown taint directive"},
		{"taint:" + strings.Repeat("v", 100), "", "", "unknown taint directive"},
	}
	for _, c := range cases {
		verb, note, err := ParseTaintDirective(c.in)
		switch {
		case c.errPart == "":
			if err != nil {
				t.Errorf("%q: unexpected error %v", c.in, err)
				continue
			}
			if verb != c.verb || note != c.note {
				t.Errorf("%q: got (%q, %q), want (%q, %q)", c.in, verb, note, c.verb, c.note)
			}
		case c.errPart == "not":
			if err != ErrNotDirective {
				t.Errorf("%q: err = %v, want ErrNotDirective", c.in, err)
			}
		default:
			if err == nil || err == ErrNotDirective || !strings.Contains(err.Error(), c.errPart) {
				t.Errorf("%q: err = %v, want error containing %q", c.in, err, c.errPart)
			}
		}
	}
}

// TestTaintCapable pins the cleanliness frontier the whole analysis
// rests on: content-bearing types carry taint, numeric metadata does
// not — which is exactly why length/offset-only errors are provably
// safe to return across the boundary.
func TestTaintCapable(t *testing.T) {
	str := types.Typ[types.String]
	integer := types.Typ[types.Int]
	byteT := types.Typ[types.Byte]
	runeT := types.Typ[types.Rune]
	boolT := types.Typ[types.Bool]
	errT := types.Universe.Lookup("error").Type()
	field := func(typ types.Type) *types.Struct {
		return types.NewStruct([]*types.Var{types.NewField(token.NoPos, nil, "F", typ, false)}, nil)
	}
	cases := []struct {
		name string
		typ  types.Type
		want bool
	}{
		{"string", str, true},
		{"int", integer, false},
		{"byte", byteT, true},
		{"rune", runeT, true},
		{"bool", boolT, false},
		{"float64", types.Typ[types.Float64], false},
		{"error", errT, true},
		{"[]byte", types.NewSlice(byteT), true},
		{"[]int", types.NewSlice(integer), false},
		{"[4]byte", types.NewArray(byteT, 4), true},
		{"map[string]int", types.NewMap(str, integer), true},
		{"map[int]int", types.NewMap(integer, integer), false},
		{"chan byte", types.NewChan(types.SendRecv, byteT), true},
		{"*int", types.NewPointer(integer), false},
		{"*string", types.NewPointer(str), true},
		{"struct{F int}", field(integer), false},
		{"struct{F string}", field(str), true},
		{"func()", types.NewSignatureType(nil, nil, nil, nil, nil, false), false},
	}
	for _, c := range cases {
		if got := taintCapable(c.typ); got != c.want {
			t.Errorf("taintCapable(%s) = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestSymbolKey pins the naming scheme the source/sink spec tables key
// on: pkgpath.Func for functions, pkgpath.Type.Method for methods with
// pointer receivers normalized away.
func TestSymbolKey(t *testing.T) {
	const src = `package p

type T struct{}

func (t *T) M() {}
func (t T) V() {}
func F() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	conf := types.Config{}
	pkg, err := conf.Check("privedit/internal/p", fset, []*ast.File{f}, nil)
	if err != nil {
		t.Fatal(err)
	}
	lookupMethod := func(typeName, method string) *types.Func {
		obj := pkg.Scope().Lookup(typeName)
		named, ok := obj.Type().(*types.Named)
		if !ok {
			t.Fatalf("%s is not a named type", typeName)
		}
		for i := 0; i < named.NumMethods(); i++ {
			if m := named.Method(i); m.Name() == method {
				return m
			}
		}
		t.Fatalf("method %s.%s not found", typeName, method)
		return nil
	}
	cases := []struct {
		fn   *types.Func
		want string
	}{
		{pkg.Scope().Lookup("F").(*types.Func), "privedit/internal/p.F"},
		{lookupMethod("T", "M"), "privedit/internal/p.T.M"},
		{lookupMethod("T", "V"), "privedit/internal/p.T.V"},
	}
	for _, c := range cases {
		if got := symbolKey(c.fn); got != c.want {
			t.Errorf("symbolKey(%s) = %q, want %q", c.fn.Name(), got, c.want)
		}
	}
	if got := symbolKey(nil); got != "" {
		t.Errorf("symbolKey(nil) = %q, want empty", got)
	}
}
