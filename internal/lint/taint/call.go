// Call evaluation: the interprocedural glue. A call site resolves its
// callee (direct, method, method value, interface dispatch), checks the
// builtin sink/source spec tables, composes the callee's summary into
// the caller's state, and falls back to a conservative default for
// functions outside the analyzed set.
package taint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// evalCall returns one abstract value per call result.
func (ec *evalCtx) evalCall(call *ast.CallExpr) []*val {
	info := ec.info()

	// Conversion: string(b), []byte(s), T(x) — taint passes through, but
	// only into types that can carry content: int(b[0]) is a count, and
	// counts are clean by definition.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			v := ec.evalExpr(call.Args[0])
			if !taintCapable(tv.Type) {
				return []*val{nil}
			}
			return []*val{elemView(v)}
		}
		return []*val{nil}
	}

	// Builtins.
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			return ec.evalBuiltin(b, call)
		}
	}

	// Resolve the callee.
	var fn *types.Func
	var recvVal *val
	var recvExpr ast.Expr
	fun := unparen(call.Fun)
	// Generic instantiation wraps the callee in an index expression.
	if ix, ok := fun.(*ast.IndexExpr); ok {
		fun = unparen(ix.X)
	} else if ix, ok := fun.(*ast.IndexListExpr); ok {
		fun = unparen(ix.X)
	}
	switch f := fun.(type) {
	case *ast.Ident:
		switch obj := info.Uses[f].(type) {
		case *types.Func:
			fn = obj
		default:
			if v := ec.lookup(obj); v != nil && v.bound != nil {
				fn = v.bound.fn
				recvVal = v.bound.recv
			}
		}
	case *ast.SelectorExpr:
		if sel := info.Selections[f]; sel != nil && sel.Kind() == types.MethodVal {
			fn, _ = sel.Obj().(*types.Func)
			recvExpr = f.X
			recvVal = ec.evalExpr(f.X)
		} else if obj, ok := info.Uses[f.Sel].(*types.Func); ok {
			fn = obj
		} else if v := ec.evalSelector(f); v != nil && v.bound != nil {
			fn = v.bound.fn
			recvVal = v.bound.recv
		}
	case *ast.FuncLit:
		ec.execClosure(f)
	}

	// Evaluate arguments (in order, for side effects too).
	argVals := make([]*val, len(call.Args))
	for i, arg := range call.Args {
		argVals[i] = ec.evalExpr(arg)
	}

	nres := ec.callResultCount(call)
	if fn == nil {
		return ec.defaultPropagate(call, nil, nres, recvVal, recvExpr, argVals)
	}
	fn = originOf(fn)

	// Assemble the callee's input row: receiver first, then params.
	sig, _ := fn.Type().(*types.Signature)
	hasRecv := sig != nil && sig.Recv() != nil
	var inputVals []*val
	var inputExprs []ast.Expr
	if hasRecv {
		inputVals = append(inputVals, recvVal)
		inputExprs = append(inputExprs, recvExpr)
	}
	for i := range call.Args {
		inputVals = append(inputVals, argVals[i])
		inputExprs = append(inputExprs, call.Args[i])
	}

	results := make([]*val, nres)

	// 1. Builtin sink spec (trust-boundary crossings).
	if spec, ok := builtinSinks[symbolKey(fn)]; ok {
		ec.applySinkSpec(spec, fn, sig, call, argVals)
	}

	// 2. Source spec (builtin table or //taint:source annotation).
	if spec := ec.a.sourceSpecFor(fn); spec != nil {
		ec.applySourceSpec(spec, call, results)
	}

	// Track hand-off of taint for reachability, per callee input:
	// concrete taint marks the callee directly; input-conditioned taint
	// becomes a forward edge resolved by the reachability closure.
	ec.trackHandoff(fn, inputVals)

	// 3. Sanitizer: outputs are sanctioned ciphertext. Sinks reached
	// inside the sanitizer body are still honored (a sanitizer must not
	// trace or ship its plaintext input), but no taint flows out.
	if ec.a.isSanitizer(fn) {
		if callee := ec.a.funcs[fn]; callee != nil {
			ec.applySummarySinks(callee, call, inputVals)
		}
		return results
	}

	// 4. In-module callee: compose its summary.
	if callee := ec.a.funcs[fn]; callee != nil {
		ec.applySummary(callee, call, inputVals, inputExprs, results)
		return results
	}

	// 5. Interface method: merge every in-module implementation.
	if impls := ec.a.implementations(fn); len(impls) > 0 {
		for _, impl := range impls {
			if spec := ec.a.sourceSpecFor(impl.fn); spec != nil {
				ec.applySourceSpec(spec, call, results)
			}
			if spec, ok := builtinSinks[symbolKey(impl.fn)]; ok {
				implSig, _ := impl.fn.Type().(*types.Signature)
				ec.applySinkSpec(spec, impl.fn, implSig, call, argVals)
			}
			if ec.a.isSanitizer(impl.fn) {
				ec.applySummarySinks(impl, call, inputVals)
				continue
			}
			ec.trackHandoff(impl.fn, inputVals)
			ec.applySummary(impl, call, inputVals, inputExprs, results)
		}
		return results
	}

	// 6. Unknown/external callee: conservative default.
	return ec.defaultPropagateInto(call, fn, nres, recvVal, recvExpr, argVals, results)
}

// contentFormatters are the external constructors that embed their
// operands in the value they build. Every other external callee's error
// result describes the failure without containing the inputs (io.ReadAll
// does not put the buffer in its error), so it stays clean — the lever
// that keeps the error-escape sink about content, not causality. The
// strconv parsers are here because *strconv.NumError carries the input
// string verbatim.
var contentFormatters = map[string]bool{
	"fmt.Errorf":           true,
	"errors.New":           true,
	"errors.Join":          true,
	"strconv.Atoi":         true,
	"strconv.ParseInt":     true,
	"strconv.ParseUint":    true,
	"strconv.ParseFloat":   true,
	"strconv.ParseBool":    true,
	"strconv.Unquote":      true,
	"strconv.ParseComplex": true,
}

// applySinkSpec fires a spec'd sink for each tainted argument position.
func (ec *evalCtx) applySinkSpec(spec *sinkSpec, fn *types.Func, sig *types.Signature, call *ast.CallExpr, argVals []*val) {
	params := append([]int(nil), spec.params...)
	if spec.variadic && sig != nil && sig.Variadic() {
		for i := sig.Params().Len() - 1; i < len(call.Args); i++ {
			params = append(params, i)
		}
	}
	for _, p := range params {
		if p < 0 || p >= len(argVals) {
			continue
		}
		ec.fireSink(spec.desc, call.Args[p].Pos(), fn, argVals[p])
	}
}

// fireSink reports (concrete taint) or records (symbolic taint) a sink
// hit for value v at pos.
func (ec *evalCtx) fireSink(desc string, pos token.Pos, fn *types.Func, v *val) {
	if v == nil {
		return
	}
	sinkStep := Step{Pos: pos, Note: "sink: " + desc + " (" + displayName(fn) + ")"}
	for _, o := range coverOrigins(v, "") {
		ext := o.extend(sinkStep)
		if o.input == -1 {
			ec.a.report(desc, pos, ext.steps)
			continue
		}
		if ec.fi.sum.addSink(&condSink{
			cond:  flowCond{input: o.input, field: o.field},
			desc:  desc,
			pos:   pos,
			steps: ext.steps,
		}) {
			ec.a.changed = true
		}
	}
}

// applySourceSpec taints spec'd results and out-parameters.
func (ec *evalCtx) applySourceSpec(spec *sourceSpec, call *ast.CallExpr, results []*val) {
	src := factVal(&fact{origins: []origin{{
		input: -1,
		steps: []Step{{Pos: call.Pos(), Note: "source: " + spec.desc}},
	}}})
	for _, r := range spec.results {
		if r >= 0 && r < len(results) {
			results[r] = mergeVals(results[r], src)
		}
	}
	for _, p := range spec.outParams {
		if p >= 0 && p < len(call.Args) {
			ec.assignValTo(call.Args[p], src)
		}
	}
	ec.a.markTainted(ec.fi.fn, -1)
}

// trackHandoff records taint reaching a callee's inputs for the
// reachable-package derivation: concrete origins mark the (callee, input)
// pair immediately; input-conditioned origins become forward edges from
// the caller's input to the callee's, so the closure only follows them
// when that caller input actually carries plaintext.
func (ec *evalCtx) trackHandoff(fn *types.Func, inputVals []*val) {
	inModule := ec.a.funcs[fn] != nil
	for i, v := range inputVals {
		if v == nil {
			continue
		}
		for _, o := range coverOrigins(v, "") {
			if o.input == -1 {
				ec.a.markTainted(fn, i)
			} else if inModule {
				ec.fi.sum.forwards[fwdEdge{callee: fn, calleeIdx: i, callerIdx: o.input}] = true
			}
		}
	}
}

// applySummary composes a callee summary into the caller: result taints,
// writes through arguments, and conditional sinks.
func (ec *evalCtx) applySummary(callee *funcInfo, call *ast.CallExpr, inputVals []*val, inputExprs []ast.Expr, results []*val) {
	sum := callee.sum
	display := displayName(callee.fn)
	intoStep := Step{Pos: call.Pos(), Note: "passed to " + display}
	viaStep := Step{Pos: call.Pos(), Note: "tainted by " + display}

	keys := make([]sumKey, 0, len(sum.flows))
	for k := range sum.flows {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].out != keys[j].out {
			return keys[i].out < keys[j].out
		}
		return keys[i].outField < keys[j].outField
	})
	for _, key := range keys {
		conds := make([]flowCond, 0, len(sum.flows[key]))
		for c := range sum.flows[key] {
			conds = append(conds, c)
		}
		sort.Slice(conds, func(i, j int) bool {
			if conds[i].input != conds[j].input {
				return conds[i].input < conds[j].input
			}
			return conds[i].field < conds[j].field
		})
		out := &fact{}
		for _, cond := range conds {
			tmpl := sum.flows[key][cond]
			if cond == unconditional {
				o := origin{input: -1, steps: append(append([]Step(nil), tmpl.steps...), viaStep)}
				if len(o.steps) > maxStepsPerPath {
					o.steps = o.steps[:maxStepsPerPath]
				}
				out.addOrigin(o)
				ec.a.markTainted(ec.fi.fn, -1)
				continue
			}
			if cond.input < 0 || cond.input >= len(inputVals) {
				continue
			}
			for _, base := range coverOrigins(inputVals[cond.input], cond.field) {
				ext := base.extend(append([]Step{intoStep}, tmpl.steps...)...)
				out.addOrigin(origin{input: ext.input, field: ext.field, steps: ext.steps})
			}
		}
		if len(out.origins) == 0 {
			continue
		}
		v := factVal(out)
		if key.outField != "" {
			v = &val{symInput: -1, fields: map[string]*fact{key.outField: out}}
		}
		if key.out < sum.numResults {
			if key.out < len(results) {
				results[key.out] = mergeVals(results[key.out], v)
			}
			continue
		}
		inIdx := key.out - sum.numResults
		if inIdx >= 0 && inIdx < len(inputExprs) && inputExprs[inIdx] != nil {
			ec.assignValTo(inputExprs[inIdx], v)
		}
	}

	ec.applySummarySinks(callee, call, inputVals)
}

// applySummarySinks fires the callee's conditional sinks against the
// caller's argument taints.
func (ec *evalCtx) applySummarySinks(callee *funcInfo, call *ast.CallExpr, inputVals []*val) {
	display := displayName(callee.fn)
	intoStep := Step{Pos: call.Pos(), Note: "passed to " + display}
	for _, cs := range callee.sum.sinks {
		if cs.cond.input < 0 || cs.cond.input >= len(inputVals) {
			continue
		}
		for _, base := range coverOrigins(inputVals[cs.cond.input], cs.cond.field) {
			ext := base.extend(append([]Step{intoStep}, cs.steps...)...)
			if base.input == -1 {
				ec.a.report(cs.desc, cs.pos, ext.steps)
				continue
			}
			if ec.fi.sum.addSink(&condSink{
				cond:  flowCond{input: base.input, field: base.field},
				desc:  cs.desc,
				pos:   cs.pos,
				steps: ext.steps,
			}) {
				ec.a.changed = true
			}
		}
	}
}

// defaultPropagate handles calls to unknown functions: every result is
// tainted iff any argument (or the receiver) is, and only when the
// result type can carry plaintext. Error results are the exception: they
// stay clean unless the callee is a content-embedding constructor (see
// contentFormatters).
func (ec *evalCtx) defaultPropagate(call *ast.CallExpr, fn *types.Func, nres int, recvVal *val, recvExpr ast.Expr, argVals []*val) []*val {
	return ec.defaultPropagateInto(call, fn, nres, recvVal, recvExpr, argVals, make([]*val, nres))
}

func (ec *evalCtx) defaultPropagateInto(call *ast.CallExpr, fn *types.Func, nres int, recvVal *val, recvExpr ast.Expr, argVals []*val, results []*val) []*val {
	merged := mergeVals(append([]*val{recvVal}, argVals...)...)
	if merged == nil || merged.isClean() {
		return results
	}
	tainted := factVal(collapse(merged))
	if tainted == nil {
		return results
	}
	step := Step{Pos: call.Pos(), Note: "through call"}
	if f := tainted.whole; f != nil {
		ext := &fact{}
		for _, o := range f.origins {
			ext.addOrigin(o.extend(step))
		}
		tainted = factVal(ext)
	}
	resTypes := ec.callResultTypes(call)
	for i := 0; i < nres && i < len(results); i++ {
		if i < len(resTypes) && !taintCapable(resTypes[i]) {
			continue
		}
		if i < len(resTypes) && isErrorType(resTypes[i]) && !contentFormatters[symbolKey(fn)] {
			continue
		}
		results[i] = mergeVals(results[i], tainted)
	}
	// A method on an external type may retain its arguments
	// (strings.Builder.WriteString): taint the receiver object.
	if recvExpr != nil {
		argOnly := mergeVals(argVals...)
		if argOnly != nil && !argOnly.isClean() {
			ec.assignValTo(recvExpr, factVal(collapse(argOnly)))
		}
	}
	return results
}

// evalBuiltin models append/copy and keeps the rest inert.
func (ec *evalCtx) evalBuiltin(b *types.Builtin, call *ast.CallExpr) []*val {
	switch b.Name() {
	case "append":
		vals := make([]*val, len(call.Args))
		for i, a := range call.Args {
			vals[i] = ec.evalExpr(a)
		}
		return []*val{elemView(mergeVals(vals...))}
	case "copy":
		if len(call.Args) == 2 {
			src := ec.evalExpr(call.Args[1])
			ec.evalExpr(call.Args[0])
			if f := collapse(src); f != nil {
				ec.assignElem(call.Args[0], factVal(f), call.Pos())
			}
		}
		return []*val{nil}
	case "min", "max":
		vals := make([]*val, len(call.Args))
		for i, a := range call.Args {
			vals[i] = ec.evalExpr(a)
		}
		return []*val{elemView(mergeVals(vals...))}
	default:
		// len, cap, new, make, delete, close, clear, panic, print, ...
		for _, a := range call.Args {
			ec.evalExpr(a)
		}
		return []*val{nil}
	}
}

func (ec *evalCtx) callResultCount(call *ast.CallExpr) int {
	return len(ec.callResultTypes(call))
}

func (ec *evalCtx) callResultTypes(call *ast.CallExpr) []types.Type {
	tv, ok := ec.info().Types[call]
	if !ok || tv.Type == nil || tv.IsVoid() {
		return nil
	}
	if tup, ok := tv.Type.(*types.Tuple); ok {
		out := make([]types.Type, tup.Len())
		for i := 0; i < tup.Len(); i++ {
			out[i] = tup.At(i).Type()
		}
		return out
	}
	return []types.Type{tv.Type}
}
