// Statement execution and expression evaluation for the abstract
// interpreter. Flow-insensitive within a function (assignments merge,
// never kill), which over-approximates but keeps loops and aliasing
// sound for the patterns the module uses.
package taint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

func (ec *evalCtx) info() *types.Info { return ec.fi.pkg.Info }

func (ec *evalCtx) objOf(id *ast.Ident) types.Object {
	if obj := ec.info().Uses[id]; obj != nil {
		return obj
	}
	return ec.info().Defs[id]
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// --- statements -------------------------------------------------------

func (ec *evalCtx) execStmt(s ast.Stmt) {
	switch st := s.(type) {
	case nil:
	case *ast.BlockStmt:
		if st == nil {
			return
		}
		for _, sub := range st.List {
			ec.execStmt(sub)
		}
	case *ast.ExprStmt:
		ec.evalExpr(st.X)
	case *ast.AssignStmt:
		ec.execAssign(st)
	case *ast.DeclStmt:
		ec.execDecl(st)
	case *ast.ReturnStmt:
		ec.execReturn(st)
	case *ast.IfStmt:
		ec.execStmt(st.Init)
		ec.evalExpr(st.Cond)
		ec.execStmt(st.Body)
		ec.execStmt(st.Else)
	case *ast.ForStmt:
		ec.execStmt(st.Init)
		ec.evalExpr(st.Cond)
		ec.execStmt(st.Body)
		ec.execStmt(st.Post)
	case *ast.RangeStmt:
		ec.execRange(st)
	case *ast.SwitchStmt:
		ec.execStmt(st.Init)
		ec.evalExpr(st.Tag)
		for _, clause := range st.Body.List {
			cc, ok := clause.(*ast.CaseClause)
			if !ok {
				continue
			}
			for _, e := range cc.List {
				ec.evalExpr(e)
			}
			for _, sub := range cc.Body {
				ec.execStmt(sub)
			}
		}
	case *ast.TypeSwitchStmt:
		ec.execTypeSwitch(st)
	case *ast.SelectStmt:
		for _, clause := range st.Body.List {
			cc, ok := clause.(*ast.CommClause)
			if !ok {
				continue
			}
			ec.execStmt(cc.Comm)
			for _, sub := range cc.Body {
				ec.execStmt(sub)
			}
		}
	case *ast.LabeledStmt:
		ec.execStmt(st.Stmt)
	case *ast.GoStmt:
		ec.evalExpr(st.Call)
	case *ast.DeferStmt:
		ec.evalExpr(st.Call)
	case *ast.SendStmt:
		v := ec.evalExpr(st.Value)
		ec.assignValTo(st.Chan, factVal(collapse(v)))
	case *ast.IncDecStmt, *ast.BranchStmt, *ast.EmptyStmt:
	}
}

func (ec *evalCtx) execAssign(st *ast.AssignStmt) {
	// Remember closure literals bound to names so direct calls of the
	// variable still execute the body (already executed at eval time).
	for i, rhs := range st.Rhs {
		if lit, ok := unparen(rhs).(*ast.FuncLit); ok && i < len(st.Lhs) {
			if id, ok := unparen(st.Lhs[i]).(*ast.Ident); ok {
				if obj := ec.objOf(id); obj != nil {
					ec.closures[obj] = lit
				}
			}
		}
	}
	if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
		vals := ec.evalMulti(st.Rhs[0], len(st.Lhs))
		for i, lhs := range st.Lhs {
			if i < len(vals) {
				ec.assignValTo(lhs, vals[i])
			}
		}
		return
	}
	for i, lhs := range st.Lhs {
		if i >= len(st.Rhs) {
			break
		}
		ec.assignValTo(lhs, ec.evalExpr(st.Rhs[i]))
	}
}

func (ec *evalCtx) execDecl(st *ast.DeclStmt) {
	gd, ok := st.Decl.(*ast.GenDecl)
	if !ok || gd.Tok != token.VAR {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		if len(vs.Values) == 1 && len(vs.Names) > 1 {
			vals := ec.evalMulti(vs.Values[0], len(vs.Names))
			for i, name := range vs.Names {
				if i < len(vals) {
					ec.assignValTo(name, vals[i])
				}
			}
			continue
		}
		for i, name := range vs.Names {
			if i < len(vs.Values) {
				ec.assignValTo(name, ec.evalExpr(vs.Values[i]))
			}
		}
	}
}

func (ec *evalCtx) execRange(st *ast.RangeStmt) {
	xv := ec.evalExpr(st.X)
	ev := elemView(xv)
	var keyVal *val
	if tv, ok := ec.info().Types[st.X]; ok && tv.Type != nil {
		switch tv.Type.Underlying().(type) {
		case *types.Map, *types.Chan:
			keyVal = ev
		}
	}
	if st.Key != nil {
		ec.assignValTo(st.Key, keyVal)
	}
	if st.Value != nil {
		ec.assignValTo(st.Value, ev)
	}
	ec.execStmt(st.Body)
}

func (ec *evalCtx) execTypeSwitch(st *ast.TypeSwitchStmt) {
	ec.execStmt(st.Init)
	var tagVal *val
	switch assign := st.Assign.(type) {
	case *ast.ExprStmt:
		if ta, ok := unparen(assign.X).(*ast.TypeAssertExpr); ok {
			tagVal = ec.evalExpr(ta.X)
		}
	case *ast.AssignStmt:
		if len(assign.Rhs) == 1 {
			if ta, ok := unparen(assign.Rhs[0]).(*ast.TypeAssertExpr); ok {
				tagVal = ec.evalExpr(ta.X)
			}
		}
	}
	for _, clause := range st.Body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		if obj := ec.info().Implicits[cc]; obj != nil && tagVal != nil {
			ec.mergeState(obj, tagVal)
		}
		for _, sub := range cc.Body {
			ec.execStmt(sub)
		}
	}
}

// execReturn records result flows into the summary, checks the
// error-escape sink, and reports source-rooted escapes.
func (ec *evalCtx) execReturn(st *ast.ReturnStmt) {
	if ec.inClosure {
		for _, e := range st.Results {
			ec.evalExpr(e)
		}
		return
	}
	fi := ec.fi
	var vals []*val
	switch {
	case len(st.Results) == 0:
		// Naked return: read the named result variables.
		vals = make([]*val, len(fi.results))
		for i, r := range fi.results {
			vals[i] = ec.lookup(r)
		}
	case len(st.Results) == 1 && len(fi.results) > 1:
		vals = ec.evalMulti(st.Results[0], len(fi.results))
	default:
		vals = make([]*val, len(st.Results))
		for i, e := range st.Results {
			vals[i] = ec.evalExpr(e)
		}
	}
	for i, v := range vals {
		if i >= len(fi.results) || v == nil {
			continue
		}
		ec.recordResultFlows(i, v, st.Pos())
	}
}

func (ec *evalCtx) recordResultFlows(idx int, v *val, pos token.Pos) {
	fi := ec.fi
	// Results that cannot carry content (lengths, offsets, counts, bools)
	// never enter the summary: a Len() derived from plaintext is exactly
	// the length/offset-only diagnostic the rule wants code to use.
	if !taintCapable(fi.results[idx].Type()) {
		return
	}
	retStep := Step{Pos: pos, Note: "returned by " + displayName(fi.fn)}

	record := func(outField string, origins []origin) {
		for _, o := range origins {
			cond := unconditional
			if o.input >= 0 {
				cond = flowCond{input: o.input, field: o.field}
			}
			ext := o.extend(retStep)
			if fi.sum.addFlow(sumKey{out: idx, outField: outField}, cond, &flowTmpl{steps: ext.steps}) {
				ec.a.changed = true
			}
		}
	}
	var whole []origin
	if v.symInput >= 0 {
		whole = append(whole, origin{input: v.symInput, field: v.symField})
	}
	if v.whole != nil {
		whole = append(whole, v.whole.origins...)
	}
	record("", whole)
	for _, name := range sortedFieldNames(v.fields) {
		record(name, v.fields[name].origins)
	}

	// Error-escape sink: a tainted error returned from an exported
	// function of an internal package rides logs and HTTP responses.
	if fi.errorEscapeApplies() && isErrorType(fi.results[idx].Type()) {
		sinkStep := Step{Pos: pos, Note: "sink: " + errorEscapeSink + " " + displayName(fi.fn)}
		for _, o := range coverOrigins(v, "") {
			ext := o.extend(sinkStep)
			if o.input == -1 {
				ec.a.report(errorEscapeSink, pos, ext.steps)
			} else if fi.sum.addSink(&condSink{
				cond:  flowCond{input: o.input, field: o.field},
				desc:  errorEscapeSink,
				pos:   pos,
				steps: ext.steps,
			}) {
				ec.a.changed = true
			}
		}
	}
}

func (fi *funcInfo) errorEscapeApplies() bool {
	if fi.verb == VerbSanitizer || !fi.fn.Exported() {
		return false
	}
	p := fi.pkg.Path
	return strings.HasPrefix(p, "internal/") || strings.Contains(p, "/internal/")
}

// --- assignment -------------------------------------------------------

// assignValTo merges v into the abstract location named by lhs. Writes
// through inputs (receiver fields, pointer params, out-slices) are also
// recorded as summary out-flows.
func (ec *evalCtx) assignValTo(lhs ast.Expr, v *val) {
	if v == nil {
		return
	}
	switch l := unparen(lhs).(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return
		}
		ec.mergeState(ec.objOf(l), v)
	case *ast.SelectorExpr:
		sel := ec.info().Selections[l]
		if sel == nil || sel.Kind() != types.FieldVal {
			return // package-level var: untracked (documented unsoundness)
		}
		if fv, ok := sel.Obj().(*types.Var); ok && ec.a.annots.clean[fv] {
			// //taint:clean contract: the write itself is the boundary.
			// Tainted data stored here would poison every "clean" read, so
			// it is reported as a sink; clean writes are dropped entirely.
			ec.checkCleanFieldWrite(fv, v, l.Pos())
			return
		}
		root, field := rootAndFirstField(l)
		f := collapse(v)
		if f == nil || root == nil {
			return
		}
		obj := ec.objOf(root)
		if _, ok := obj.(*types.Var); !ok {
			return
		}
		ec.mergeField(obj, field, f)
		if idx := ec.inputIndexOf(obj); idx >= 0 {
			ec.recordInputWrite(idx, field, f, l.Pos())
		}
	case *ast.IndexExpr:
		ec.assignElem(l.X, v, l.Pos())
	case *ast.StarExpr:
		ec.assignElem(l.X, v, l.Pos())
	case *ast.SliceExpr:
		ec.assignElem(l.X, v, l.Pos())
	}
}

// checkCleanFieldWrite enforces the //taint:clean contract. Concrete
// taint reports immediately; input-conditioned taint becomes a condSink
// so the enforcement is interprocedural, like every other sink.
func (ec *evalCtx) checkCleanFieldWrite(fv *types.Var, v *val, pos token.Pos) {
	desc := "write into //taint:clean field " + fieldDisplay(fv)
	sinkStep := Step{Pos: pos, Note: "sink: " + desc}
	for _, o := range coverOrigins(v, "") {
		ext := o.extend(sinkStep)
		if o.input == -1 {
			ec.a.report(desc, pos, ext.steps)
		} else if ec.fi.sum.addSink(&condSink{
			cond:  flowCond{input: o.input, field: o.field},
			desc:  desc,
			pos:   pos,
			steps: ext.steps,
		}) {
			ec.a.changed = true
		}
	}
}

// assignElem taints the container/pointee behind base (xs[i] = v,
// *p = v), recording an input write when base is an input.
func (ec *evalCtx) assignElem(base ast.Expr, v *val, pos token.Pos) {
	f := collapse(v)
	if f == nil {
		return
	}
	ec.assignValTo(base, factVal(f))
	if id, ok := unparen(base).(*ast.Ident); ok {
		if idx := ec.inputIndexOf(ec.objOf(id)); idx >= 0 {
			ec.recordInputWrite(idx, "", f, pos)
		}
	}
}

// rootAndFirstField resolves x.a.b... to the root identifier and the
// first field hop ("a"), the granularity summaries track.
func rootAndFirstField(e *ast.SelectorExpr) (*ast.Ident, string) {
	cur := e
	for {
		switch x := unparen(peelDeref(cur.X)).(type) {
		case *ast.Ident:
			return x, cur.Sel.Name
		case *ast.SelectorExpr:
			cur = x
		default:
			return nil, ""
		}
	}
}

func peelDeref(e ast.Expr) ast.Expr {
	for {
		switch x := unparen(e).(type) {
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return x
		}
	}
}

func (ec *evalCtx) inputIndexOf(obj types.Object) int {
	if obj == nil {
		return -1
	}
	for i, in := range ec.fi.inputs {
		if in == obj {
			return i
		}
	}
	return -1
}

// recordInputWrite records "taint written through input idx (field)" as
// a summary out-flow, so call sites taint the corresponding argument.
func (ec *evalCtx) recordInputWrite(idx int, field string, f *fact, pos token.Pos) {
	fi := ec.fi
	key := sumKey{out: fi.sum.numResults + idx, outField: field}
	wStep := Step{Pos: pos, Note: "written through " + fi.inputs[idx].Name() + " in " + displayName(fi.fn)}
	for _, o := range f.origins {
		cond := unconditional
		if o.input >= 0 {
			cond = flowCond{input: o.input, field: o.field}
		}
		ext := o.extend(wStep)
		if fi.sum.addFlow(key, cond, &flowTmpl{steps: ext.steps}) {
			ec.a.changed = true
		}
	}
}

// --- expressions ------------------------------------------------------

func (ec *evalCtx) evalExpr(e ast.Expr) *val {
	switch x := e.(type) {
	case nil:
		return nil
	case *ast.Ident:
		obj := ec.objOf(x)
		if v := ec.lookup(obj); v != nil {
			return v
		}
		if fn, ok := obj.(*types.Func); ok {
			return &val{symInput: -1, bound: &binding{fn: fn}}
		}
		return nil
	case *ast.BasicLit:
		return nil
	case *ast.ParenExpr:
		return ec.evalExpr(x.X)
	case *ast.SelectorExpr:
		return ec.evalSelector(x)
	case *ast.CallExpr:
		vs := ec.evalCall(x)
		if len(vs) > 0 {
			return vs[0]
		}
		return nil
	case *ast.IndexExpr:
		if tv, ok := ec.info().Types[x.X]; ok && tv.Type != nil {
			if _, isSig := tv.Type.Underlying().(*types.Signature); isSig {
				return ec.evalExpr(x.X) // generic instantiation
			}
		}
		ec.evalExpr(x.Index)
		return elemView(ec.evalExpr(x.X))
	case *ast.IndexListExpr:
		return ec.evalExpr(x.X)
	case *ast.SliceExpr:
		return ec.evalExpr(x.X) // slices alias their backing array
	case *ast.StarExpr:
		return ec.evalExpr(x.X)
	case *ast.UnaryExpr:
		if x.Op == token.ARROW {
			return elemView(ec.evalExpr(x.X))
		}
		return ec.evalExpr(x.X) // incl. &x: alias
	case *ast.BinaryExpr:
		switch x.Op {
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ, token.LAND, token.LOR:
			ec.evalExpr(x.X)
			ec.evalExpr(x.Y)
			return nil
		}
		return mergeVals(ec.evalExpr(x.X), ec.evalExpr(x.Y))
	case *ast.CompositeLit:
		return ec.evalComposite(x)
	case *ast.TypeAssertExpr:
		return ec.evalExpr(x.X)
	case *ast.FuncLit:
		ec.execClosure(x)
		return nil
	case *ast.KeyValueExpr:
		return ec.evalExpr(x.Value)
	}
	return nil
}

// elemView is the abstract value of one element of a container: the
// container's taint collapsed onto the element.
func elemView(v *val) *val {
	if v == nil {
		return nil
	}
	out := mergeVals(v)
	if out != nil {
		out.bound = nil
	}
	return out
}

func (ec *evalCtx) evalSelector(x *ast.SelectorExpr) *val {
	sel := ec.info().Selections[x]
	if sel == nil {
		// Qualified identifier: pkg.Func or pkg.Var.
		obj := ec.info().Uses[x.Sel]
		if fn, ok := obj.(*types.Func); ok {
			return &val{symInput: -1, bound: &binding{fn: fn}}
		}
		return ec.lookup(obj)
	}
	switch sel.Kind() {
	case types.FieldVal:
		base := ec.evalExpr(x.X)
		if !taintCapable(sel.Obj().Type()) {
			// Scalar projection of a tainted struct (resp.ContentLength,
			// list totals): length metadata, not content.
			return nil
		}
		// A //taint:clean field holds sanctioned wire form by contract;
		// the contract is enforced at every write site (assignValTo), so
		// reads through a tainted aggregate stay clean.
		if fv, ok := sel.Obj().(*types.Var); ok && ec.a.annots.clean[fv] {
			return nil
		}
		name := sel.Obj().Name()
		out := newVal()
		if base != nil {
			if base.symInput >= 0 {
				if base.symField == "" {
					out.symInput = base.symInput
					out.symField = name
				} else {
					out.whole, _ = mergeFacts(out.whole, &fact{origins: []origin{{input: base.symInput, field: base.symField}}})
				}
			}
			out.whole, _ = mergeFacts(out.whole, base.whole)
			if f := base.fields[name]; f != nil {
				out.whole, _ = mergeFacts(out.whole, f)
			}
		}
		// Intrinsic source: a read of a //taint:source field is plaintext
		// no matter how the struct got here.
		if fv, ok := sel.Obj().(*types.Var); ok && ec.a.annots.fields[fv] {
			src := Step{Pos: x.Pos(), Note: "source: read of //taint:source field " + fieldDisplay(fv)}
			out.whole, _ = mergeFacts(out.whole, &fact{origins: []origin{{input: -1, steps: []Step{src}}}})
			ec.a.markTainted(ec.fi.fn, -1)
		}
		if out.isClean() && out.bound == nil {
			return nil
		}
		return out
	case types.MethodVal:
		fn, _ := sel.Obj().(*types.Func)
		return &val{symInput: -1, bound: &binding{fn: fn, recv: ec.evalExpr(x.X)}}
	case types.MethodExpr:
		fn, _ := sel.Obj().(*types.Func)
		return &val{symInput: -1, bound: &binding{fn: fn}}
	}
	return nil
}

func (ec *evalCtx) evalComposite(x *ast.CompositeLit) *val {
	var st *types.Struct
	if tv, ok := ec.info().Types[x]; ok && tv.Type != nil {
		st, _ = tv.Type.Underlying().(*types.Struct)
	}
	out := newVal()
	if st != nil {
		for i, elt := range x.Elts {
			var name string
			var value ast.Expr
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				if id, ok := kv.Key.(*ast.Ident); ok {
					name = id.Name
				}
				value = kv.Value
			} else if i < st.NumFields() {
				name = st.Field(i).Name()
				value = elt
			}
			v := ec.evalExpr(value)
			if fobj := structFieldByName(st, name); fobj != nil && ec.a.annots.clean[fobj] {
				// Initializing a //taint:clean field is a write like any
				// other: enforce the contract, keep the field clean.
				if v != nil {
					ec.checkCleanFieldWrite(fobj, v, elt.Pos())
				}
				continue
			}
			f := collapse(v)
			if f == nil || name == "" {
				continue
			}
			if out.fields == nil {
				out.fields = make(map[string]*fact)
			}
			out.fields[name], _ = mergeFacts(out.fields[name], f)
		}
	} else {
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				out = mergeVals(out, ec.evalExpr(kv.Key), ec.evalExpr(kv.Value))
				continue
			}
			out = mergeVals(out, ec.evalExpr(elt))
		}
		if out == nil {
			return nil
		}
	}
	if out.isClean() && out.bound == nil {
		return nil
	}
	return out
}

// structFieldByName resolves a field object of st, or nil.
func structFieldByName(st *types.Struct, name string) *types.Var {
	if name == "" {
		return nil
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == name {
			return st.Field(i)
		}
	}
	return nil
}

// execClosure executes a function literal's body in the enclosing
// context: captured variables share state, and intrinsic field sources
// inside the body fire normally. Return statements inside the literal do
// not contribute to the enclosing function's summary.
func (ec *evalCtx) execClosure(lit *ast.FuncLit) {
	saved := ec.inClosure
	ec.inClosure = true
	ec.execStmt(lit.Body)
	ec.inClosure = saved
}

// evalMulti evaluates a multi-value expression (call, type assert, map
// index, channel receive) into n abstract values.
func (ec *evalCtx) evalMulti(e ast.Expr, n int) []*val {
	switch x := unparen(e).(type) {
	case *ast.CallExpr:
		return ec.evalCall(x)
	case *ast.TypeAssertExpr:
		return []*val{ec.evalExpr(x.X), nil}
	case *ast.IndexExpr:
		ec.evalExpr(x.Index)
		return []*val{elemView(ec.evalExpr(x.X)), nil}
	case *ast.UnaryExpr:
		if x.Op == token.ARROW {
			return []*val{elemView(ec.evalExpr(x.X)), nil}
		}
	}
	out := make([]*val, n)
	if n > 0 {
		out[0] = ec.evalExpr(e)
	}
	return out
}

func fieldDisplay(v *types.Var) string {
	if v.Pkg() != nil {
		return v.Pkg().Name() + "." + v.Name()
	}
	return v.Name()
}

// displayName is the short human name of a function: "pkg.Func" or
// "pkg.Type.Method".
func displayName(fn *types.Func) string {
	key := symbolKey(fn)
	if i := strings.LastIndex(key, "/"); i >= 0 {
		key = key[i+1:]
	}
	return key
}
