// Suppression directives. A diagnostic can be acknowledged in source with
//
//	//lint:ignore RULE[,RULE...] reason
//
// on the same line as the offending code or on the line directly above
// it. The rule list names the diagnostics being suppressed and the reason
// is mandatory: an unexplained suppression is itself a diagnostic (rule
// "directive"), because the whole point of the suite is that deviations
// from the paper's invariants carry a written justification.
package lint

import (
	"errors"
	"strings"
)

// ErrNotDirective reports that a comment is not a lint directive at all.
var ErrNotDirective = errors.New("not a lint directive")

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	Rules  []string
	Reason string
	File   string
	Line   int
	used   bool
}

// ParseIgnoreDirective parses the text of a line comment (with the
// leading "//" already stripped). It returns ErrNotDirective when the
// comment is not a lint directive, and a descriptive error when it is one
// but malformed.
func ParseIgnoreDirective(text string) (rules []string, reason string, err error) {
	body, ok := strings.CutPrefix(strings.TrimLeft(text, " \t"), "lint:")
	if !ok {
		return nil, "", ErrNotDirective
	}
	verb, rest := cutSpace(body)
	if verb != "ignore" {
		return nil, "", errors.New("unknown lint directive //lint:" + quoteTrunc(verb) + " (only //lint:ignore is supported)")
	}
	ruleList, reason := cutSpace(rest)
	if ruleList == "" {
		return nil, "", errors.New("//lint:ignore needs a rule list: //lint:ignore RULE reason")
	}
	for _, r := range strings.Split(ruleList, ",") {
		r = strings.TrimSpace(r)
		if r == "" {
			return nil, "", errors.New("//lint:ignore has an empty rule in its rule list")
		}
		if !validRuleName(r) {
			return nil, "", errors.New("//lint:ignore rule " + quoteTrunc(r) + " has characters outside [a-z0-9-]")
		}
		rules = append(rules, r)
	}
	reason = strings.TrimSpace(reason)
	if reason == "" {
		return nil, "", errors.New("//lint:ignore " + ruleList + " is missing the mandatory reason")
	}
	return rules, reason, nil
}

// cutSpace splits s into its first whitespace-delimited token and the
// trimmed remainder.
func cutSpace(s string) (token, rest string) {
	s = strings.TrimSpace(s)
	i := strings.IndexFunc(s, func(r rune) bool { return r == ' ' || r == '\t' })
	if i < 0 {
		return s, ""
	}
	return s[:i], strings.TrimSpace(s[i+1:])
}

func validRuleName(r string) bool {
	for _, c := range r {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '-':
		default:
			return false
		}
	}
	return true
}

// quoteTrunc quotes a possibly hostile string for an error message,
// keeping it short.
func quoteTrunc(s string) string {
	const max = 40
	if len(s) > max {
		s = s[:max] + "..."
	}
	out := make([]rune, 0, len(s)+2)
	out = append(out, '"')
	for _, c := range s {
		if c < 0x20 || c == 0x7f {
			out = append(out, '?')
			continue
		}
		out = append(out, c)
	}
	return string(append(out, '"'))
}
