// Module loading for the analyzer suite. The loader walks the module
// tree, parses every package with go/parser, and type-checks it with
// go/types, resolving standard-library imports through go/importer's
// source importer. It is deliberately stdlib-only: no golang.org/x/tools.
//
// Each directory yields up to two analysis units:
//
//   - the package itself, augmented with its in-package _test.go files
//     (so test-only rules see test code with full type information), and
//   - the external "_test" package, when one exists.
//
// Other module packages always import the plain (non-test) package, which
// is what the go toolchain does too, so augmenting with test files cannot
// introduce import cycles.
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"privedit/internal/lint/taint"
)

// Module is a fully parsed and type-checked module.
type Module struct {
	Root  string // absolute directory containing go.mod
	Path  string // module path from go.mod
	Fset  *token.FileSet
	Units []*Unit // analysis units, module packages in dependency order

	std  types.Importer
	base map[string]*types.Package // import path -> checked plain package

	// basePkgs are the plain (non-test) packages in their pass-1
	// type-check universe, retained for the taint analysis: they import
	// each other through m.base, so cross-package object identity holds,
	// which the interprocedural summary lookup depends on. (The analysis
	// units are re-checked with test files and have distinct objects.)
	basePkgs []*taint.Package

	// Whole-module taint analysis, computed once on first use (the
	// plaintext-flow rule and the derived plaintext-package set share it).
	taintOnce sync.Once
	taintRes  *taint.Result
}

// Unit is one type-checked analysis unit.
type Unit struct {
	// Path is the unit's import path. External test packages keep the
	// import path of the package under test, with XTest set.
	Path   string
	Dir    string
	XTest  bool
	Files  []*ast.File
	IsTest map[*ast.File]bool // true for files named *_test.go
	Pkg    *types.Package
	Info   *types.Info
}

// NonTestPath returns the unit's import path; it exists for symmetry with
// future derived paths and to make call sites read clearly.
func (u *Unit) NonTestPath() string { return u.Path }

// dirFiles is the classified parse of one directory.
type dirFiles struct {
	dir     string // absolute
	rel     string // module-relative, "" for the root
	pkgName string // package name of the plain package ("" if none)
	plain   []*ast.File
	inTest  []*ast.File // _test.go files in the same package
	xTest   []*ast.File // _test.go files in package <name>_test
	imports map[string]bool
}

// LoadModule parses and type-checks the module rooted at root.
func LoadModule(root string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := readModulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	m := &Module{
		Root: root,
		Path: modPath,
		Fset: token.NewFileSet(),
		base: make(map[string]*types.Package),
	}
	m.std = importer.ForCompiler(m.Fset, "source", nil)

	dirs, err := m.parseTree()
	if err != nil {
		return nil, err
	}
	order, err := topoSort(dirs, modPath)
	if err != nil {
		return nil, err
	}

	// Pass 1: plain packages in dependency order, registered for import.
	for _, d := range order {
		if len(d.plain) == 0 {
			continue
		}
		pkg, info, err := m.check(d.importPath(modPath), d.plain, nil)
		if err != nil {
			return nil, err
		}
		m.base[d.importPath(modPath)] = pkg
		m.basePkgs = append(m.basePkgs, &taint.Package{
			Path:  d.importPath(modPath),
			Files: append([]*ast.File(nil), d.plain...),
			Pkg:   pkg,
			Info:  info,
		})
	}
	// Pass 2: analysis units. Augmented packages and external test
	// packages only ever import plain packages, so order is free here.
	for _, d := range order {
		path := d.importPath(modPath)
		if files := append(append([]*ast.File{}, d.plain...), d.inTest...); len(files) > 0 {
			pkg, info, err := m.check(path, files, nil)
			if err != nil {
				return nil, err
			}
			m.Units = append(m.Units, &Unit{
				Path: path, Dir: d.dir, Files: files,
				IsTest: testFileMap(m.Fset, files), Pkg: pkg, Info: info,
			})
		}
		if len(d.xTest) > 0 {
			pkg, info, err := m.check(path+"_test", d.xTest, nil)
			if err != nil {
				return nil, err
			}
			m.Units = append(m.Units, &Unit{
				Path: path, Dir: d.dir, XTest: true, Files: d.xTest,
				IsTest: testFileMap(m.Fset, d.xTest), Pkg: pkg, Info: info,
			})
		}
	}
	return m, nil
}

// CheckDir type-checks a directory of fixture files as if it lived at
// import path asPath inside the module. Files named *_test.go are marked
// as test files (in-package style). The unit is not registered for import
// by other packages. Used by the golden-file tests.
func (m *Module) CheckDir(dir, asPath string) (*Unit, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(m.Fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	pkg, info, err := m.check(asPath, files, nil)
	if err != nil {
		return nil, err
	}
	return &Unit{
		Path: asPath, Dir: dir, Files: files,
		IsTest: testFileMap(m.Fset, files), Pkg: pkg, Info: info,
	}, nil
}

// parseTree walks the module and parses every buildable directory.
func (m *Module) parseTree() ([]*dirFiles, error) {
	var dirs []*dirFiles
	seen := map[string]*dirFiles{}
	err := filepath.WalkDir(m.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != m.Root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		name := d.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			return nil
		}
		dir := filepath.Dir(path)
		df := seen[dir]
		if df == nil {
			rel, err := filepath.Rel(m.Root, dir)
			if err != nil {
				return err
			}
			if rel == "." {
				rel = ""
			}
			df = &dirFiles{dir: dir, rel: filepath.ToSlash(rel), imports: map[string]bool{}}
			seen[dir] = df
			dirs = append(dirs, df)
		}
		f, err := parser.ParseFile(m.Fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		pkgName := f.Name.Name
		switch {
		case strings.HasSuffix(name, "_test.go") && strings.HasSuffix(pkgName, "_test"):
			df.xTest = append(df.xTest, f)
		case strings.HasSuffix(name, "_test.go"):
			df.inTest = append(df.inTest, f)
		default:
			if df.pkgName != "" && df.pkgName != pkgName {
				return fmt.Errorf("lint: %s: multiple packages %s and %s", dir, df.pkgName, pkgName)
			}
			df.pkgName = pkgName
			df.plain = append(df.plain, f)
			for _, spec := range f.Imports {
				if p, err := strconv.Unquote(spec.Path.Value); err == nil {
					df.imports[p] = true
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(dirs, func(i, j int) bool { return dirs[i].rel < dirs[j].rel })
	return dirs, nil
}

func (d *dirFiles) importPath(modPath string) string {
	if d.rel == "" {
		return modPath
	}
	return modPath + "/" + d.rel
}

// topoSort orders directories so every module-internal import of a plain
// package precedes its importer.
func topoSort(dirs []*dirFiles, modPath string) ([]*dirFiles, error) {
	byPath := map[string]*dirFiles{}
	for _, d := range dirs {
		byPath[d.importPath(modPath)] = d
	}
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := map[*dirFiles]int{}
	var order []*dirFiles
	var visit func(d *dirFiles) error
	visit = func(d *dirFiles) error {
		switch state[d] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("lint: import cycle through %s", d.importPath(modPath))
		}
		state[d] = visiting
		for imp := range d.imports {
			if dep, ok := byPath[imp]; ok {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[d] = done
		order = append(order, d)
		return nil
	}
	for _, d := range dirs {
		if err := visit(d); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// check type-checks one set of files as a package at the given path.
func (m *Module) check(path string, files []*ast.File, extra types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	var errs []error
	conf := &types.Config{
		Importer: &modImporter{m: m, extra: extra},
		Error:    func(err error) { errs = append(errs, err) },
	}
	pkg, _ := conf.Check(path, m.Fset, files, info)
	if len(errs) > 0 {
		return nil, nil, fmt.Errorf("lint: type-checking %s: %v (and %d more)", path, errs[0], len(errs)-1)
	}
	return pkg, info, nil
}

// modImporter resolves module-internal imports from the already-checked
// plain packages and everything else from the standard library source
// importer.
type modImporter struct {
	m     *Module
	extra types.Importer
}

func (mi *modImporter) Import(path string) (*types.Package, error) {
	if p, ok := mi.m.base[path]; ok {
		return p, nil
	}
	if path == mi.m.Path || strings.HasPrefix(path, mi.m.Path+"/") {
		return nil, fmt.Errorf("lint: module package %s not loaded (import cycle or missing directory)", path)
	}
	if mi.extra != nil {
		if p, err := mi.extra.Import(path); err == nil {
			return p, nil
		}
	}
	return mi.m.std.Import(path)
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			p = strings.Trim(p, `"`)
			if p != "" {
				return p, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

func testFileMap(fset *token.FileSet, files []*ast.File) map[*ast.File]bool {
	m := make(map[*ast.File]bool, len(files))
	for _, f := range files {
		m[f] = strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go")
	}
	return m
}
