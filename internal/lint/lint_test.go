package lint

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// The module is loaded once and shared: type-checking the tree plus the
// standard library closure costs a few seconds.
var (
	moduleOnce sync.Once
	module     *Module
	moduleErr  error
)

func loadTestModule(t *testing.T) *Module {
	t.Helper()
	moduleOnce.Do(func() {
		root, err := filepath.Abs("../..")
		if err != nil {
			moduleErr = err
			return
		}
		module, moduleErr = LoadModule(root)
	})
	if moduleErr != nil {
		t.Fatalf("LoadModule: %v", moduleErr)
	}
	return module
}

// TestModuleClean is the suite's own acceptance gate: the full analyzer
// suite over the real module must produce zero unsuppressed diagnostics.
func TestModuleClean(t *testing.T) {
	m := loadTestModule(t)
	if len(m.Units) < 20 {
		t.Fatalf("loaded only %d analysis units; the loader is missing packages", len(m.Units))
	}
	for _, d := range Unsuppressed(m.Run(Analyzers)) {
		t.Errorf("module not lint-clean: %s", d)
	}
}

// TestRandomnessConfinedToCrypt asserts the §VI-A discipline end to end:
// internal/crypt is the only unannotated randomness source in the
// module, and the only annotated exemptions are the seeded evaluation
// workload generator and the seeded benchmark tapes (hot-path ops,
// store workload).
func TestRandomnessConfinedToCrypt(t *testing.T) {
	m := loadTestModule(t)
	diags := m.Run([]*Analyzer{NonceSource})

	var suppressed []string
	for _, d := range diags {
		if d.Suppressed {
			suppressed = append(suppressed, d.File)
			continue
		}
		t.Errorf("unannotated randomness source outside internal/crypt: %s", d)
	}
	if want := []string{"internal/bench/hotpath.go", "internal/bench/store.go", "internal/workload/workload.go"}; !equalStrings(suppressed, want) {
		t.Errorf("annotated randomness exemptions = %v, want %v", suppressed, want)
	}

	// Sanity: the exemption the rule funnels everyone toward must be
	// real — internal/crypt actually imports crypto/rand.
	found := false
	for _, u := range m.Units {
		if modulePkg(u, m) != cryptPkg || u.XTest {
			continue
		}
		for _, f := range u.Files {
			for _, spec := range f.Imports {
				if spec.Path.Value == `"crypto/rand"` {
					found = true
				}
			}
		}
	}
	if !found {
		t.Error("internal/crypt no longer imports crypto/rand; the nonce-source exemption points at nothing")
	}
}

// TestModuleCleanTaint is the taint rule's own acceptance gate, pinned
// separately from TestModuleClean so a regression names the rule: the
// whole-module interprocedural analysis must prove zero unsuppressed
// plaintext flows — with no //lint:ignore anywhere in the tree — while
// the seeded leaks in testdata/taintflow stay detected.
func TestModuleCleanTaint(t *testing.T) {
	m := loadTestModule(t)
	diags := m.Run([]*Analyzer{PlaintextFlow})
	for _, d := range diags {
		if d.Suppressed {
			t.Errorf("plaintext-flow finding hidden behind //lint:ignore (the tree must stay ignore-free for this rule): %s", d)
			continue
		}
		t.Errorf("plaintext reaches an untrusted sink: %s", d)
	}
	res := m.TaintResult()
	if res.Functions < 300 {
		t.Errorf("taint analysis covered only %d functions; the module walk is missing bodies", res.Functions)
	}
	if res.Passes < 2 {
		t.Errorf("taint fixpoint converged in %d pass(es); summaries are not propagating", res.Passes)
	}
}

// TestPlaintextPkgsDerived pins the no-plaintext-log package set as
// machine-derived: packages that only receive ciphertext or metadata
// must stay out, and packages the analysis proves to receive plaintext
// must be in — even when nobody added them to the hand-written seeds.
func TestPlaintextPkgsDerived(t *testing.T) {
	m := loadTestModule(t)
	pkgs := m.PlaintextPkgs()
	// Derived members: none of these are in plaintextSeedPkgs; they are in
	// the set only because the taint analysis proves plaintext reaches
	// them. This is the drift hazard the derivation closes.
	for _, p := range []string{"internal/bespin", "internal/buzzword", "internal/blockdoc", "internal/stego"} {
		if seed := plaintextSeedPkgs[p]; seed {
			t.Errorf("%s is hand-seeded; this test needs it derived", p)
		}
		if !pkgs[p] {
			t.Errorf("PlaintextPkgs() is missing %s, which demonstrably handles decrypted bytes", p)
		}
	}
	// The seeds themselves must survive the union.
	for p := range plaintextSeedPkgs {
		if !pkgs[p] {
			t.Errorf("PlaintextPkgs() dropped seed package %s", p)
		}
	}
	// Observability and tooling packages carry only ciphertext sizes,
	// names, and timings; pulling them in would ban all their logging.
	for _, p := range []string{"internal/obs", "internal/trace", "internal/netsim", "internal/lint"} {
		if pkgs[p] {
			t.Errorf("PlaintextPkgs() wrongly includes %s: no plaintext reaches it", p)
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestFixtures runs the suite over every testdata fixture package and
// compares diagnostics against the // want (and // want-above)
// expectations embedded in the fixtures.
func TestFixtures(t *testing.T) {
	fixtures := []struct {
		dir    string
		asPath string
	}{
		{"noncesource", "privedit/internal/fixture"},
		{"cryptok", "privedit/internal/crypt"},
		{"plaintextlog", "privedit/internal/core"},
		{"ctxfirst", "privedit/internal/fixture"},
		{"ctxcontract", "privedit/internal/gdocs"},
		{"gofatal", "privedit/internal/fixture"},
		{"mutexcopy", "privedit/internal/fixture"},
		{"metricname", "privedit/internal/fixture"},
		{"spanname", "privedit/internal/fixture"},
		{"deprecated", "privedit/internal/fixture"},
		{"directive", "privedit/internal/fixture"},
		{"taintflow", "privedit/internal/fixture"},
		{"taintdirective", "privedit/internal/fixture"},
	}
	m := loadTestModule(t)
	for _, fx := range fixtures {
		fx := fx
		t.Run(fx.dir, func(t *testing.T) {
			u, err := m.CheckDir(filepath.Join("testdata", fx.dir), fx.asPath)
			if err != nil {
				t.Fatalf("CheckDir: %v", err)
			}
			wants, err := collectWants(m, u)
			if err != nil {
				t.Fatalf("parsing want comments: %v", err)
			}
			for _, d := range Unsuppressed(m.RunUnit(u, Analyzers)) {
				if !wants.match(d) {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for _, w := range wants.unmatched() {
				t.Errorf("expected diagnostic did not fire: %s:%d: %s", w.file, w.line, w.re)
			}
		})
	}
}

// want is one expectation from a fixture comment.
type want struct {
	file    string // base name
	line    int
	re      *regexp.Regexp
	matched bool
}

type wantSet struct{ wants []*want }

func (ws *wantSet) match(d Diagnostic) bool {
	for _, w := range ws.wants {
		if w.matched || w.file != filepath.Base(d.File) || w.line != d.Line {
			continue
		}
		if w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

func (ws *wantSet) unmatched() []*want {
	var out []*want
	for _, w := range ws.wants {
		if !w.matched {
			out = append(out, w)
		}
	}
	return out
}

// collectWants extracts // want "re" and // want-above "re" comments
// from a unit's files. A want applies to its own line; a want-above to
// the line directly above (for diagnostics that land on comments, like
// malformed directives).
func collectWants(m *Module, u *Unit) (*wantSet, error) {
	ws := &wantSet{}
	for _, f := range u.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				line := m.Fset.Position(c.Pos()).Line
				switch {
				case strings.HasPrefix(text, "want-above "):
					text = strings.TrimPrefix(text, "want-above ")
					line--
				case strings.HasPrefix(text, "want "):
					text = strings.TrimPrefix(text, "want ")
				default:
					continue
				}
				file := filepath.Base(m.Fset.Position(c.Pos()).Filename)
				for text = strings.TrimSpace(text); text != ""; text = strings.TrimSpace(text) {
					q, err := strconv.QuotedPrefix(text)
					if err != nil {
						return nil, err
					}
					unq, err := strconv.Unquote(q)
					if err != nil {
						return nil, err
					}
					re, err := regexp.Compile(unq)
					if err != nil {
						return nil, err
					}
					ws.wants = append(ws.wants, &want{file: file, line: line, re: re})
					text = text[len(q):]
				}
			}
		}
	}
	return ws, nil
}

// TestDiagnosticString pins the file:line:col output contract the CI log
// and editors rely on.
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Rule: "nonce-source", File: "internal/x/x.go", Line: 7, Col: 2, Message: "boom"}
	if got, wantStr := d.String(), "internal/x/x.go:7:2: boom [nonce-source]"; got != wantStr {
		t.Errorf("String() = %q, want %q", got, wantStr)
	}
}
