package lint

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// The module is loaded once and shared: type-checking the tree plus the
// standard library closure costs a few seconds.
var (
	moduleOnce sync.Once
	module     *Module
	moduleErr  error
)

func loadTestModule(t *testing.T) *Module {
	t.Helper()
	moduleOnce.Do(func() {
		root, err := filepath.Abs("../..")
		if err != nil {
			moduleErr = err
			return
		}
		module, moduleErr = LoadModule(root)
	})
	if moduleErr != nil {
		t.Fatalf("LoadModule: %v", moduleErr)
	}
	return module
}

// TestModuleClean is the suite's own acceptance gate: the full analyzer
// suite over the real module must produce zero unsuppressed diagnostics.
func TestModuleClean(t *testing.T) {
	m := loadTestModule(t)
	if len(m.Units) < 20 {
		t.Fatalf("loaded only %d analysis units; the loader is missing packages", len(m.Units))
	}
	for _, d := range Unsuppressed(m.Run(Analyzers)) {
		t.Errorf("module not lint-clean: %s", d)
	}
}

// TestRandomnessConfinedToCrypt asserts the §VI-A discipline end to end:
// internal/crypt is the only unannotated randomness source in the
// module, and the only annotated exemptions are the seeded evaluation
// workload generator and the hot-path benchmark's seeded op tape.
func TestRandomnessConfinedToCrypt(t *testing.T) {
	m := loadTestModule(t)
	diags := m.Run([]*Analyzer{NonceSource})

	var suppressed []string
	for _, d := range diags {
		if d.Suppressed {
			suppressed = append(suppressed, d.File)
			continue
		}
		t.Errorf("unannotated randomness source outside internal/crypt: %s", d)
	}
	if want := []string{"internal/bench/hotpath.go", "internal/workload/workload.go"}; !equalStrings(suppressed, want) {
		t.Errorf("annotated randomness exemptions = %v, want %v", suppressed, want)
	}

	// Sanity: the exemption the rule funnels everyone toward must be
	// real — internal/crypt actually imports crypto/rand.
	found := false
	for _, u := range m.Units {
		if modulePkg(u, m) != cryptPkg || u.XTest {
			continue
		}
		for _, f := range u.Files {
			for _, spec := range f.Imports {
				if spec.Path.Value == `"crypto/rand"` {
					found = true
				}
			}
		}
	}
	if !found {
		t.Error("internal/crypt no longer imports crypto/rand; the nonce-source exemption points at nothing")
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestFixtures runs the suite over every testdata fixture package and
// compares diagnostics against the // want (and // want-above)
// expectations embedded in the fixtures.
func TestFixtures(t *testing.T) {
	fixtures := []struct {
		dir    string
		asPath string
	}{
		{"noncesource", "privedit/internal/fixture"},
		{"cryptok", "privedit/internal/crypt"},
		{"plaintextlog", "privedit/internal/core"},
		{"ctxfirst", "privedit/internal/fixture"},
		{"ctxcontract", "privedit/internal/gdocs"},
		{"gofatal", "privedit/internal/fixture"},
		{"mutexcopy", "privedit/internal/fixture"},
		{"metricname", "privedit/internal/fixture"},
		{"spanname", "privedit/internal/fixture"},
		{"deprecated", "privedit/internal/fixture"},
		{"directive", "privedit/internal/fixture"},
	}
	m := loadTestModule(t)
	for _, fx := range fixtures {
		fx := fx
		t.Run(fx.dir, func(t *testing.T) {
			u, err := m.CheckDir(filepath.Join("testdata", fx.dir), fx.asPath)
			if err != nil {
				t.Fatalf("CheckDir: %v", err)
			}
			wants, err := collectWants(m, u)
			if err != nil {
				t.Fatalf("parsing want comments: %v", err)
			}
			for _, d := range Unsuppressed(m.RunUnit(u, Analyzers)) {
				if !wants.match(d) {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for _, w := range wants.unmatched() {
				t.Errorf("expected diagnostic did not fire: %s:%d: %s", w.file, w.line, w.re)
			}
		})
	}
}

// want is one expectation from a fixture comment.
type want struct {
	file    string // base name
	line    int
	re      *regexp.Regexp
	matched bool
}

type wantSet struct{ wants []*want }

func (ws *wantSet) match(d Diagnostic) bool {
	for _, w := range ws.wants {
		if w.matched || w.file != filepath.Base(d.File) || w.line != d.Line {
			continue
		}
		if w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

func (ws *wantSet) unmatched() []*want {
	var out []*want
	for _, w := range ws.wants {
		if !w.matched {
			out = append(out, w)
		}
	}
	return out
}

// collectWants extracts // want "re" and // want-above "re" comments
// from a unit's files. A want applies to its own line; a want-above to
// the line directly above (for diagnostics that land on comments, like
// malformed directives).
func collectWants(m *Module, u *Unit) (*wantSet, error) {
	ws := &wantSet{}
	for _, f := range u.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				line := m.Fset.Position(c.Pos()).Line
				switch {
				case strings.HasPrefix(text, "want-above "):
					text = strings.TrimPrefix(text, "want-above ")
					line--
				case strings.HasPrefix(text, "want "):
					text = strings.TrimPrefix(text, "want ")
				default:
					continue
				}
				file := filepath.Base(m.Fset.Position(c.Pos()).Filename)
				for text = strings.TrimSpace(text); text != ""; text = strings.TrimSpace(text) {
					q, err := strconv.QuotedPrefix(text)
					if err != nil {
						return nil, err
					}
					unq, err := strconv.Unquote(q)
					if err != nil {
						return nil, err
					}
					re, err := regexp.Compile(unq)
					if err != nil {
						return nil, err
					}
					ws.wants = append(ws.wants, &want{file: file, line: line, re: re})
					text = text[len(q):]
				}
			}
		}
	}
	return ws, nil
}

// TestDiagnosticString pins the file:line:col output contract the CI log
// and editors rely on.
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Rule: "nonce-source", File: "internal/x/x.go", Line: 7, Col: 2, Message: "boom"}
	if got, wantStr := d.String(), "internal/x/x.go:7:2: boom [nonce-source]"; got != wantStr {
		t.Errorf("String() = %q, want %q", got, wantStr)
	}
}
