package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// PlaintextLog guards the plaintext boundary (§V-A, and the MessageGuard
// lesson about auxiliary channels): the packages that ever hold user
// plaintext — core, recb, rpcmode, mediator, crypt — must not write to
// stdout, stderr, or the process log, where plaintext would escape the
// encryption envelope. In those packages' non-test code the analyzer
// flags any use of fmt.Print/Printf/Println, any reference to the log
// package, and any reference to os.Stdout or os.Stderr.
var PlaintextLog = &Analyzer{
	Name: "no-plaintext-log",
	Doc:  "plaintext-bearing packages must not write to stdout/stderr or the process log",
	Run:  runPlaintextLog,
}

// plaintextSeedPkgs are the hand-curated module packages that handle
// user plaintext. The effective set enforced by the rule is wider: it is
// the union of these seeds with every internal package the taint
// analysis observes to receive plaintext (see Module.PlaintextPkgs),
// which is what keeps the list from drifting as code moves.
var plaintextSeedPkgs = map[string]bool{
	"internal/core":     true,
	"internal/recb":     true,
	"internal/rpcmode":  true,
	"internal/mediator": true,
	"internal/crypt":    true,
}

func runPlaintextLog(u *Unit, m *Module, report reporter) {
	if !m.PlaintextPkgs()[modulePkg(u, m)] {
		return
	}
	inspectFiles(u, true, func(f *ast.File, n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		ident, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkgName, ok := u.Info.Uses[ident].(*types.PkgName)
		if !ok {
			return true
		}
		switch pkgName.Imported().Path() {
		case "fmt":
			if strings.HasPrefix(sel.Sel.Name, "Print") {
				report(sel.Pos(), "fmt.%s in plaintext-bearing package: writing to stdout can leak plaintext outside the encryption envelope", sel.Sel.Name)
			}
		case "log":
			report(sel.Pos(), "use of log.%s in plaintext-bearing package: process logs are an unencrypted auxiliary channel", sel.Sel.Name)
		case "os":
			if sel.Sel.Name == "Stdout" || sel.Sel.Name == "Stderr" {
				report(sel.Pos(), "reference to os.%s in plaintext-bearing package: raw standard streams can leak plaintext", sel.Sel.Name)
			}
		}
		return true
	})
}
