package lint

import (
	"go/ast"
	"go/types"
)

// GoroutineTestFatal flags t.Fatal / t.Fatalf / t.FailNow (and their
// Skip cousins) called from inside a goroutine in test code. The testing
// package documents that these must be called from the test's own
// goroutine: from any other goroutine FailNow only exits that goroutine,
// so the test keeps running with its failure half-reported — exactly the
// kind of silently-weakened check the -race concurrency suites cannot
// afford. Goroutines should collect errors over a channel or a slice and
// let the test goroutine report them, or use t.Error/t.Errorf, which are
// goroutine-safe.
var GoroutineTestFatal = &Analyzer{
	Name: "goroutine-test-fatal",
	Doc:  "no t.Fatal/t.Fatalf/t.FailNow (or Skip family) inside goroutines in tests",
	Run:  runGoroutineTestFatal,
}

// fatalMethods are the testing.TB methods that terminate the calling
// goroutine and therefore must only run on the test goroutine.
var fatalMethods = map[string]bool{
	"Fatal":   true,
	"Fatalf":  true,
	"FailNow": true,
	"Skip":    true,
	"Skipf":   true,
	"SkipNow": true,
}

func runGoroutineTestFatal(u *Unit, m *Module, report reporter) {
	for _, f := range u.Files {
		if !u.IsTest[f] {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := g.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			ast.Inspect(lit.Body, func(inner ast.Node) bool {
				call, ok := inner.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || !fatalMethods[sel.Sel.Name] {
					return true
				}
				if !isTestingMethod(u, sel) {
					return true
				}
				report(call.Pos(), "%s.%s inside a goroutine only exits that goroutine, leaving the test running; collect the error and report it from the test goroutine (or use Error/Errorf)",
					exprString(sel.X), sel.Sel.Name)
				return true
			})
			return true
		})
	}
}

// isTestingMethod reports whether the selector resolves to a method
// declared by the testing package (T, B, F, and TB all share them via
// testing.common).
func isTestingMethod(u *Unit, sel *ast.SelectorExpr) bool {
	s, ok := u.Info.Selections[sel]
	if !ok {
		return false
	}
	fn, ok := s.Obj().(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "testing"
}

// exprString renders a short receiver expression for the message.
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	default:
		return "t"
	}
}
