package lint

import (
	"strings"
	"testing"

	"privedit/internal/lint/taint"
)

func TestParseIgnoreDirective(t *testing.T) {
	cases := []struct {
		in      string
		rules   []string
		reason  string
		errPart string // "" = ok, "not" = ErrNotDirective, else substring of the error
	}{
		{"lint:ignore nonce-source seeded workload generator", []string{"nonce-source"}, "seeded workload generator", ""},
		{" lint:ignore mutex-by-value copy is of a never-locked snapshot", []string{"mutex-by-value"}, "copy is of a never-locked snapshot", ""},
		{"lint:ignore a,b two rules at once", []string{"a", "b"}, "two rules at once", ""},
		{"lint:ignore metric-name  extra   spaces survive in the reason", []string{"metric-name"}, "extra   spaces survive in the reason", ""},
		{"just a comment", nil, "", "not"},
		{"lint comment without colon", nil, "", "not"},
		{"nolint:foo other tool's syntax", nil, "", "not"},
		{"lint:ignore", nil, "", "needs a rule list"},
		{"lint:ignore nonce-source", nil, "", "missing the mandatory reason"},
		{"lint:ignore nonce-source,", nil, "", "empty rule"},
		{"lint:ignore a,,b double comma", nil, "", "empty rule"},
		{"lint:ignore Rule reason", nil, "", "outside [a-z0-9-]"},
		{"lint:file-ignore x y", nil, "", "unknown lint directive"},
	}
	for _, c := range cases {
		rules, reason, err := ParseIgnoreDirective(c.in)
		switch {
		case c.errPart == "":
			if err != nil {
				t.Errorf("%q: unexpected error %v", c.in, err)
				continue
			}
			if !equalStrings(rules, c.rules) || reason != c.reason {
				t.Errorf("%q: got (%v, %q), want (%v, %q)", c.in, rules, reason, c.rules, c.reason)
			}
		case c.errPart == "not":
			if err != ErrNotDirective {
				t.Errorf("%q: err = %v, want ErrNotDirective", c.in, err)
			}
		default:
			if err == nil || err == ErrNotDirective || !strings.Contains(err.Error(), c.errPart) {
				t.Errorf("%q: err = %v, want error containing %q", c.in, err, c.errPart)
			}
		}
	}
}

// FuzzDirective hammers both directive parsers — //lint:ignore and
// //taint: share the comment namespace, so they are fuzzed on the same
// corpus. Neither may panic; a successful parse must uphold the
// invariants its consumer relies on: suppression matching needs
// non-empty validated rules and a reason, and the taint engine needs
// every well-formed verb to be one it implements (an unknown verb that
// parsed cleanly would change the taint verdict without a trace).
func FuzzDirective(f *testing.F) {
	f.Add("lint:ignore nonce-source seeded workload generator")
	f.Add("lint:ignore a,b two rules")
	f.Add("lint:ignore")
	f.Add("lint:ignore x")
	f.Add("lint:frobnicate y z")
	f.Add("not a directive at all")
	f.Add("lint:ignore \t weird\twhitespace everywhere ")
	f.Add("lint:ignore a,,b reason")
	f.Add("lint:ignore " + strings.Repeat("x", 1000) + " long rule")
	f.Add("taint:source decrypted body")
	f.Add("taint:sanitizer encrypt-then-encode path")
	f.Add("taint:clean ciphertext mirror")
	f.Add("taint:")
	f.Add("taint:sink transport body")
	f.Add("taint:Source case matters")
	f.Add("taint: source leading space before the verb")
	f.Add("taint:" + strings.Repeat("v", 1000))
	f.Fuzz(func(t *testing.T, text string) {
		rules, reason, err := ParseIgnoreDirective(text)
		if err != nil {
			if len(rules) != 0 || reason != "" {
				t.Fatalf("error %v returned with non-zero results (%v, %q)", err, rules, reason)
			}
		} else {
			if len(rules) == 0 {
				t.Fatal("ok parse returned no rules")
			}
			for _, r := range rules {
				if r == "" || !validRuleName(r) {
					t.Fatalf("ok parse returned invalid rule %q", r)
				}
			}
			if strings.TrimSpace(reason) == "" {
				t.Fatal("ok parse returned empty reason")
			}
			if reason != strings.TrimSpace(reason) {
				t.Fatalf("reason %q not trimmed", reason)
			}
		}

		verb, note, terr := taint.ParseTaintDirective(text)
		if terr != nil {
			if verb != "" || note != "" {
				t.Fatalf("taint error %v returned with non-zero results (%q, %q)", terr, verb, note)
			}
			// The two families must stay disjoint: a comment can be a
			// malformed taint directive or a malformed lint directive,
			// never both (the sweep reports the taint error first).
			if terr != taint.ErrNotDirective && err != nil && err != ErrNotDirective {
				t.Fatalf("text %q is malformed under both parsers", text)
			}
			return
		}
		switch verb {
		case taint.VerbSource, taint.VerbSanitizer, taint.VerbClean:
		default:
			t.Fatalf("ok taint parse returned unimplemented verb %q", verb)
		}
		if note != strings.TrimSpace(note) {
			t.Fatalf("taint note %q not trimmed", note)
		}
	})
}
