package lint

import (
	"go/ast"
	"go/types"
)

// MutexByValue flags copies of values whose type (transitively) contains
// a sync.Mutex or sync.RWMutex: value receivers, by-value parameters,
// assignments that read an existing value, and range clauses that copy
// elements. A copied mutex forks the lock state — both copies unlock
// independently while guarding the same logical data, which is how the
// sharded store's per-document locking would silently stop excluding
// writers. This goes deeper than go vet's copylocks in one direction the
// project cares about — it also rejects by-value parameters and value
// receivers on our own lock-bearing structs even when the call site
// hasn't been written yet — while deliberately not chasing function
// returns or interface conversions.
var MutexByValue = &Analyzer{
	Name: "mutex-by-value",
	Doc:  "no copying of structs containing sync.Mutex/RWMutex (assignment, range, value receivers, by-value params)",
	Run:  runMutexByValue,
}

func runMutexByValue(u *Unit, m *Module, report reporter) {
	memo := map[types.Type]bool{}
	locky := func(t types.Type) bool { return containsLock(t, memo, nil) }

	inspectFiles(u, false, func(f *ast.File, n ast.Node) bool {
		switch node := n.(type) {
		case *ast.FuncDecl:
			if node.Recv != nil && len(node.Recv.List) == 1 {
				field := node.Recv.List[0]
				if tv, ok := u.Info.Types[field.Type]; ok {
					if _, isPtr := tv.Type.(*types.Pointer); !isPtr && locky(tv.Type) {
						report(field.Type.Pos(), "value receiver copies %s, which contains a mutex; use a pointer receiver", types.TypeString(tv.Type, types.RelativeTo(u.Pkg)))
					}
				}
			}
			checkLockParams(u, node.Type, locky, report)
		case *ast.FuncLit:
			checkLockParams(u, node.Type, locky, report)
		case *ast.AssignStmt:
			for i, rhs := range node.Rhs {
				// Assigning to the blank identifier copies nothing.
				if len(node.Lhs) == len(node.Rhs) {
					if id, ok := node.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
						continue
					}
				}
				checkLockCopyExpr(u, rhs, locky, report)
			}
		case *ast.ValueSpec:
			for _, v := range node.Values {
				checkLockCopyExpr(u, v, locky, report)
			}
		case *ast.RangeStmt:
			for _, v := range []ast.Expr{node.Key, node.Value} {
				if v == nil {
					continue
				}
				if id, ok := v.(*ast.Ident); ok && id.Name == "_" {
					continue
				}
				t := exprType(u, v)
				if t != nil && locky(t) {
					report(v.Pos(), "range clause copies %s, which contains a mutex; range over indices or use pointers", types.TypeString(t, types.RelativeTo(u.Pkg)))
				}
			}
		}
		return true
	})
}

// checkLockParams flags by-value parameters whose type contains a lock.
func checkLockParams(u *Unit, ft *ast.FuncType, locky func(types.Type) bool, report reporter) {
	if ft.Params == nil {
		return
	}
	for _, field := range ft.Params.List {
		tv, ok := u.Info.Types[field.Type]
		if !ok {
			continue
		}
		if locky(tv.Type) {
			report(field.Type.Pos(), "parameter passes %s by value, which copies a mutex; pass a pointer", types.TypeString(tv.Type, types.RelativeTo(u.Pkg)))
		}
	}
}

// checkLockCopyExpr flags an assignment right-hand side that reads an
// existing lock-containing value (and therefore copies it). Fresh values
// — composite literals, function calls — are not flagged: the flagged
// pattern is duplicating a lock that may already be held.
func checkLockCopyExpr(u *Unit, rhs ast.Expr, locky func(types.Type) bool, report reporter) {
	if !readsExistingValue(rhs) {
		return
	}
	tv, ok := u.Info.Types[rhs]
	if !ok || tv.Type == nil {
		return
	}
	if locky(tv.Type) {
		report(rhs.Pos(), "assignment copies %s, which contains a mutex; copy a pointer instead", types.TypeString(tv.Type, types.RelativeTo(u.Pkg)))
	}
}

// exprType resolves the type of an expression, falling back to the
// definition for identifiers introduced by := (range clauses record those
// in Defs, not Types).
func exprType(u *Unit, e ast.Expr) types.Type {
	if tv, ok := u.Info.Types[e]; ok && tv.Type != nil {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj, ok := u.Info.Defs[id]; ok && obj != nil {
			return obj.Type()
		}
		if obj, ok := u.Info.Uses[id]; ok && obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// readsExistingValue reports whether e denotes an existing stored value
// (identifier, field, element, or dereference) rather than a freshly
// constructed one.
func readsExistingValue(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name != "_"
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	case *ast.ParenExpr:
		return readsExistingValue(x.X)
	default:
		return false
	}
}

// containsLock reports whether t transitively contains a sync.Mutex or
// sync.RWMutex by value (fields, embedded fields, array elements).
// Pointers, slices, maps, channels, and interfaces break containment.
func containsLock(t types.Type, memo map[types.Type]bool, stack []types.Type) bool {
	if v, ok := memo[t]; ok {
		return v
	}
	for _, s := range stack {
		if s == t {
			return false // recursive type via non-pointer is impossible, but stay safe
		}
	}
	stack = append(stack, t)
	result := false
	switch x := t.(type) {
	case *types.Named:
		obj := x.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && (obj.Name() == "Mutex" || obj.Name() == "RWMutex") {
			result = true
		} else {
			result = containsLock(x.Underlying(), memo, stack)
		}
	case *types.Struct:
		for i := 0; i < x.NumFields(); i++ {
			if containsLock(x.Field(i).Type(), memo, stack) {
				result = true
				break
			}
		}
	case *types.Array:
		result = containsLock(x.Elem(), memo, stack)
	}
	memo[t] = result
	return result
}
