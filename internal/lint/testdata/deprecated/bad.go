package fixture

// OldOpen is the legacy entry point.
//
// Deprecated: use NewOpen instead.
func OldOpen(pw string) string { return pw }

// NewOpen is the replacement.
func NewOpen(pw string) string { return pw }

type handle struct{}

// Close tears the handle down.
//
// Deprecated: use Shutdown.
func (handle) Close() {}

// Shutdown is the replacement for Close.
func (handle) Shutdown() {}

func caller() {
	_ = OldOpen("pw") // want `call to deprecated OldOpen — Deprecated: use NewOpen instead\.`
	_ = NewOpen("pw")
	var h handle
	h.Close() // want `call to deprecated Close — Deprecated: use Shutdown\.`
	h.Shutdown()
}
