package fixture

// Test files may keep exercising deprecated forwarders until deletion:
// no diagnostics expected anywhere in this file.
func testOnlyCaller() {
	_ = OldOpen("pw")
	var h handle
	h.Close()
}
