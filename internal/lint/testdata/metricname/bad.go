// Fixture: metric-name. Registrations through internal/obs must use
// constant privedit_-prefixed snake_case names.
package fixture

import "privedit/internal/obs"

// register exercises good and bad names against a private registry.
func register(dynamic string) {
	r := obs.NewRegistry()
	r.NewCounter("bad_total", "missing prefix").Inc() // want `metric name "bad_total" must match privedit_<snake_case>`
	r.NewGauge("privedit_BadCase", "camel case").Set(1) // want `metric name "privedit_BadCase" must match privedit_<snake_case>`
	r.NewCounter(dynamic, "computed name").Inc() // want `obs.NewCounter name must be a compile-time string constant`
	r.NewHistogram("privedit_fixture_seconds", "fine", nil).Observe(1)
	r.NewCounter(okName, "constants resolve fine").Inc()
}

// okName is a compile-time constant, which the analyzer folds.
const okName = "privedit_fixture_ops_total"

// registerDefault exercises the package-level helpers.
func registerDefault() {
	obs.NewCounter("also_bad_total", "missing prefix") // want `metric name "also_bad_total" must match privedit_<snake_case>`
	//lint:ignore metric-name fixture: demonstrating an acknowledged off-namespace metric
	obs.NewGauge("legacy_ratio", "acknowledged")
}
