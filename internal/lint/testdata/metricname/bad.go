// Fixture: metric-name. Registrations through internal/obs must use
// constant privedit_-prefixed snake_case names.
package fixture

import "privedit/internal/obs"

// register exercises good and bad names against a private registry.
func register(dynamic string) {
	r := obs.NewRegistry()
	r.NewCounter("bad_total", "missing prefix").Inc() // want `metric name "bad_total" must match privedit_<snake_case>`
	r.NewGauge("privedit_BadCase", "camel case").Set(1) // want `metric name "privedit_BadCase" must match privedit_<snake_case>`
	r.NewCounter(dynamic, "computed name").Inc() // want `obs.NewCounter name must be a compile-time string constant`
	r.NewHistogram("privedit_fixture_seconds", "fine", nil).Observe(1)
	r.NewCounter(okName, "constants resolve fine").Inc()
}

// okName is a compile-time constant, which the analyzer folds.
const okName = "privedit_fixture_ops_total"

// registerDefault exercises the package-level helpers.
func registerDefault() {
	obs.NewCounter("also_bad_total", "missing prefix") // want `metric name "also_bad_total" must match privedit_<snake_case>`
	//lint:ignore metric-name fixture: demonstrating an acknowledged off-namespace metric
	obs.NewGauge("legacy_ratio", "acknowledged")
}

// registerResilience pins the PR-4 fault-injection and resilience metric
// families as analyzer-clean: the exact names the netsim fault transport
// and the mediator's retry/breaker/degraded stack register.
func registerResilience() {
	obs.NewCounter("privedit_netsim_faults_total", "by kind", "kind", "drop").Inc()
	obs.NewCounter("privedit_netsim_fault_requests_total", "storm traffic").Inc()
	obs.NewCounter("privedit_mediator_retry_attempts_total", "retries").Inc()
	obs.NewCounter("privedit_mediator_retry_giveups_total", "exhausted").Inc()
	obs.NewHistogram("privedit_mediator_retry_backoff_seconds", "jitter", nil).Observe(0.005)
	obs.NewCounter("privedit_mediator_breaker_transitions_total", "by target", "to", "open").Inc()
	obs.NewGauge("privedit_mediator_breaker_open_docs", "open now").Set(0)
	obs.NewGauge("privedit_mediator_queued_saves", "shadow depth").Set(0)
	obs.NewCounter("privedit_mediator_degraded_total", "by op", "op", "save").Inc()
	obs.NewCounter("privedit_mediator_drains_total", "replays").Inc()

	// Near-misses around the new families must still be caught.
	obs.NewCounter("netsim_faults_total", "missing prefix") // want `metric name "netsim_faults_total" must match privedit_<snake_case>`
	obs.NewCounter("privedit_mediator_retryAttempts_total", "camel case") // want `metric name "privedit_mediator_retryAttempts_total" must match privedit_<snake_case>`
}
