// Fixture: loaded as privedit/internal/crypt — the one package allowed
// to import crypto/rand without annotation.
package crypt

import "crypto/rand"

// Fill reads CSPRNG bytes.
func Fill(b []byte) {
	_, _ = rand.Read(b)
}
