// Fixture: ctx-first positional rule.
package fixture

import "context"

// Late buries the context mid-signature.
func Late(n int, ctx context.Context) error { // want `context.Context must be the first parameter \(found at position 2\)`
	return ctx.Err()
}

// LateLit does the same inside a function literal.
var LateLit = func(s string, ctx context.Context) { // want `context.Context must be the first parameter`
	_ = ctx.Err()
}

type worker struct{}

// Run is a method with a late context.
func (worker) Run(id int, ctx context.Context) { // want `context.Context must be the first parameter`
	_ = ctx.Err()
}
