package fixture

import (
	"context"
	"testing"
)

// First is the blessed shape.
func First(ctx context.Context, n int) error { return ctx.Err() }

// NoCtx takes no context at all.
func NoCtx(n int) int { return n + 1 }

// Helper follows the test-helper convention: testing.TB-family parameters
// may precede the context.
func Helper(t *testing.T, ctx context.Context, name string) {
	t.Helper()
	_ = ctx.Err()
}

// BenchHelper allows *testing.B too.
func BenchHelper(b *testing.B, ctx context.Context) { _ = ctx.Err() }
