// Fixture: mutex-by-value. Guarded contains a sync.Mutex; Wrapper
// contains one transitively.
package fixture

import "sync"

// Guarded is a lock-bearing struct.
type Guarded struct {
	mu sync.Mutex
	n  int
}

// Wrapper embeds the lock one level down.
type Wrapper struct {
	inner Guarded
	name  string
}

// Count copies the receiver, forking its mutex.
func (g Guarded) Count() int { // want `value receiver copies Guarded, which contains a mutex`
	return g.n
}

// Consume takes a lock-bearing struct by value.
func Consume(w Wrapper) int { // want `parameter passes Wrapper by value, which copies a mutex`
	return w.inner.n
}

// Copies demonstrates assignment and range copies.
func Copies(gs []Guarded, byPtr *Guarded) {
	dup := gs[0] // want `assignment copies Guarded, which contains a mutex`
	_ = dup
	deref := *byPtr // want `assignment copies Guarded, which contains a mutex`
	_ = deref
	for _, g := range gs { // want `range clause copies Guarded, which contains a mutex`
		_ = g.n
	}
}
