package fixture

// Fine shows the blessed shapes: pointers, fresh composite literals, and
// index-based iteration.
func Fine(gs []Guarded) {
	g := Guarded{} // fresh value, nothing to fork
	g.mu.Lock()
	g.mu.Unlock()

	p := &gs[0] // pointer copy, lock state shared correctly
	_ = p

	for i := range gs {
		gs[i].mu.Lock()
		gs[i].mu.Unlock()
	}

	var w Wrapper // zero value declaration, no copy
	_ = w.name
}

// PtrCount is the pointer-receiver counterpart of Count.
func (g *Guarded) PtrCount() int { return g.n }

// Suppressed documents the escape hatch.
func Suppressed(g Guarded) int { //lint:ignore mutex-by-value fixture: demonstrating an acknowledged copy
	return g.n
}
