// Fixture: goroutine-test-fatal. The Fatal family may only run on the
// test goroutine.
package fixture

import (
	"sync"
	"testing"
)

func TestSpawned(t *testing.T) {
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		t.Fatal("boom") // want `t.Fatal inside a goroutine only exits that goroutine`
	}()
	go func(id int) {
		defer wg.Done()
		if id > 0 {
			t.Fatalf("worker %d", id) // want `t.Fatalf inside a goroutine only exits that goroutine`
		}
		t.Errorf("worker %d", id) // Error/Errorf are goroutine-safe: no diagnostic
	}(1)
	wg.Wait()
	t.Fatal("on the test goroutine: fine")
}

func TestNested(t *testing.T) {
	go func() {
		cleanup := func() {
			t.FailNow() // want `t.FailNow inside a goroutine only exits that goroutine`
		}
		cleanup()
	}()
}

func TestSkipInGoroutine(t *testing.T) {
	go func() {
		t.SkipNow() // want `t.SkipNow inside a goroutine only exits that goroutine`
	}()
}

func TestSuppressed(t *testing.T) {
	go func() {
		//lint:ignore goroutine-test-fatal fixture: documenting the suppression syntax
		t.Fatal("acknowledged")
	}()
}

func TestSubtest(t *testing.T) {
	t.Run("sub", func(t *testing.T) {
		t.Fatal("subtest body runs on its own test goroutine: fine")
	})
}
