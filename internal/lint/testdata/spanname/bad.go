// Fixture: span-name. Spans started through internal/trace must use
// constant snake_case names, so phase aggregation and /debug/traces
// filters can match them literally.
package fixture

import (
	"context"

	"privedit/internal/trace"
)

// spans exercises good and bad span names against every starter.
func spans(ctx context.Context, dynamic string) {
	_, sp := trace.Start(ctx, "BadCamel") // want `span name "BadCamel" must be snake_case`
	sp.End()
	_, sp = trace.Start(ctx, dynamic) // want `trace.Start span name must be a compile-time string constant`
	sp.End()
	_, sp = trace.Default.Root(ctx, "kebab-case") // want `span name "kebab-case" must be snake_case`
	sp.End()
	_, sp = trace.Join(ctx, "", "edit op") // want `span name "edit op" must be snake_case`
	sp.End()

	// The blessed forms: package constants, local constants, literals.
	_, sp = trace.Start(ctx, trace.SpanEditOp)
	sp.End()
	_, sp = trace.Start(ctx, okSpan)
	sp.End()
	_, sp = trace.Default.Root(ctx, "fixture_phase_2")
	sp.End()

	//lint:ignore span-name fixture: demonstrating an acknowledged legacy name
	_, sp = trace.Start(ctx, "Legacy.Span")
	sp.End()
}

// okSpan is a compile-time constant, which the analyzer folds.
const okSpan = "fixture_op"
