// Fixture: malformed //taint: directives are reported under the
// non-suppressible "directive" pseudo-rule, exactly like malformed
// //lint:ignore comments — a typo'd annotation must never silently
// change the taint verdict. Diagnostics land on the comment line, so
// the expectations use the want-above form.
package fixture

//taint:
// want-above `missing its verb`
func a() {}

//taint:sink transport body
// want-above `unknown taint directive`
func b() {}

//taint:Sanitizer verbs are case-sensitive
// want-above `unknown taint directive`
func c() {}

// A well-formed directive in a position where it has no effect (a
// sanitizer on a plain helper) is harmless, not an error.
//
//taint:sanitizer no-op here, but well-formed
func d(s string) string { return s }
