// Fixture: malformed //lint:ignore directives are themselves reported
// under the non-suppressible "directive" pseudo-rule. Because the
// diagnostic lands on the comment line itself, expectations here use
// the form that applies to the preceding line.
package fixture

//lint:ignore
// want-above `needs a rule list`
func a() {}

//lint:ignore nonce-source
// want-above `missing the mandatory reason`
func b() {}

//lint:frobnicate something
// want-above `unknown lint directive`
func c() {}

//lint:ignore nonce-source, trailing comma makes an empty rule
// want-above `empty rule in its rule list`
func d() {}

//lint:ignore BadRule! characters outside the rule alphabet
// want-above `characters outside \[a-z0-9-\]`
func e() {}

//lint:ignore metric-name a well-formed directive that suppresses nothing is harmless
func f() {}
