package core

import "fmt"

// Banner prints a constant; the annotation records why it cannot leak.
func Banner() {
	//lint:ignore no-plaintext-log fixture: constant banner, carries no document content
	fmt.Println("privedit fixture")
}
