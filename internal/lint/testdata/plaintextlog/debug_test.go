package core

import (
	"fmt"
	"testing"
)

// Test files may print freely; they never ship.
func TestBanner(t *testing.T) {
	fmt.Println("test output is fine")
	Banner()
}
