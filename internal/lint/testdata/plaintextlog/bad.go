// Fixture: loaded as privedit/internal/core — a plaintext-bearing
// package where stdout/stderr/log writes are banned.
package core

import (
	"fmt"
	"log"
	"os"
)

// Leak exercises every banned sink.
func Leak(plaintext string) string {
	fmt.Println(plaintext)          // want `fmt.Println in plaintext-bearing package`
	log.Printf("%s", plaintext)     // want `use of log.Printf in plaintext-bearing package`
	fmt.Fprintln(os.Stdout, "x")    // want `reference to os.Stdout in plaintext-bearing package`
	return fmt.Sprintf("%q", plaintext) // Sprintf builds a string; no sink, no diagnostic
}
