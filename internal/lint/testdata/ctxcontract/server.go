// Fixture: loaded as privedit/internal/gdocs — the ctx contract requires
// the store API methods to exist and to take a context first.
package gdocs

import "context"

// Server mimics the real store server but violates the contract: Content
// dropped its context, and SetContents/ApplyDelta are missing entirely.
type Server struct{} // want `ctx contract: Server.SetContents is missing` `ctx contract: Server.ApplyDelta is missing`

// Create keeps the contract.
func (s *Server) Create(ctx context.Context, docID string) error {
	return ctx.Err()
}

// Content lost its context parameter.
func (s *Server) Content(docID string) (string, int, error) { // want `ctx contract: Server.Content must take context.Context as its first parameter`
	return "", 0, nil
}
