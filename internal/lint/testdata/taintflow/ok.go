// Fixture: the negative space of the plaintext-flow rule. None of these
// functions may produce a diagnostic — the harness fails on unexpected
// findings, so this file pins sanitizers, clean reads, and the numeric
// escape hatch as analyzer-clean.
package fixture

import (
	"fmt"
	"net/http"
	"strings"
)

// Seal is the fixture stand-in for the encrypt-then-encode commit path:
// its output is sanctioned ciphertext, whatever went in.
//
//taint:sanitizer fixture stand-in for core.Encrypt
func Seal(plain string) string {
	return "sealed:" + plain
}

// SealedSave is the sanctioned shape of DirectLeak: same source, same
// sink, but the sanitizer between them stops the taint.
func SealedSave(d *Doc) {
	http.Post("http://mediator/save", "text/plain", strings.NewReader(Seal(d.Text)))
}

// WireForward reads the //taint:clean Payload field: by the enforced
// contract it holds ciphertext, so shipping it is fine.
func WireForward(p *Packet) {
	http.Post("http://mediator/wire", "text/plain", strings.NewReader(p.Payload))
}

// LengthOnly builds a diagnostic from numeric properties of the
// plaintext. Lengths and offsets are deemed clean, so this error may
// escape the exported API.
func LengthOnly(d *Doc) error {
	if len(d.Text) > d.Length {
		return fmt.Errorf("doc overflows declared length %d by %d bytes", d.Length, len(d.Text)-d.Length)
	}
	return nil
}
