// Fixture: seeded plaintext leaks, one per propagation pattern the
// taint engine must prove it handles — direct call, interface dispatch,
// slice aliasing, struct-field granularity, a multi-hop chain, and the
// //taint:clean write contract. Each // want pins the diagnostic at the
// sink position; the multi-hop want additionally pins the complete
// source→sink path, hop by hop.
package fixture

import (
	"errors"
	"net/http"
	"strings"

	"privedit/internal/trace"
)

// Doc is a decrypted document held client-side.
type Doc struct {
	//taint:source decrypted body
	Text string
	// Length is a plain int: numeric values never carry taint, which is
	// what makes length-only diagnostics provably clean.
	Length int
}

// Packet is the wire form. Payload is declared ciphertext-only; the
// declaration is a contract, enforced at every write site below.
type Packet struct {
	//taint:clean ciphertext after Seal
	Payload string
	Hops    int
}

// DirectLeak is the simplest violation: the plaintext field goes
// straight into an HTTP request body in the same function.
func DirectLeak(d *Doc) {
	http.Post("http://mediator/save", "text/plain", strings.NewReader(d.Text)) // want `plaintext reaches HTTP request body`
}

// Uploader abstracts the save path. The engine resolves dispatch through
// interfaces defined in analyzed packages to every implementation.
type Uploader interface {
	Upload(body string) error
}

type wireUploader struct{}

func (wireUploader) Upload(body string) error {
	_, err := http.Post("http://mediator/up", "text/plain", strings.NewReader(body)) // want `plaintext reaches HTTP request body`
	return err
}

// SaveVia leaks through interface dispatch: the engine must resolve
// u.Upload to wireUploader.Upload and compose its sink summary.
func SaveVia(u Uploader, d *Doc) {
	u.Upload(d.Text)
}

// AliasLeak reslices the decrypted buffer; the window aliases the same
// backing array, so the error built from it still carries plaintext, and
// a tainted error returned from an exported API is itself a sink.
func AliasLeak(d *Doc) error {
	buf := []byte(d.Text)
	window := buf[4:12]
	return errors.New(string(window)) // want `plaintext reaches error escaping exported API`
}

// envelope exercises struct-field granularity: body and note live in the
// same struct, but only body is tainted.
type envelope struct {
	body string
	note string
}

// FieldLeak stores plaintext in one field of a local struct. The clean
// sibling field must NOT produce a finding — field granularity is the
// difference between this rule being usable and it flagging every
// struct that ever touched plaintext.
func FieldLeak(d *Doc) {
	var e envelope
	e.body = d.Text
	e.note = "saved"
	var sp trace.Span
	sp.Annotate("note", e.note)
	sp.Annotate("body", e.body) // want `plaintext reaches trace annotation`
}

// Deep3Leak pushes the plaintext through three helpers before the sink.
// The acceptance bar: the finding must surface the complete path, every
// hop with a position, not just the endpoints.
func Deep3Leak(d *Doc) {
	wrap(d.Text)
}

func wrap(s string) { frame("[" + s + "]") }

func frame(s string) { send(s) }

func send(s string) {
	http.Post("http://mediator/deep", "text/plain", strings.NewReader(s)) // want `plaintext reaches HTTP request body: source: read of //taint:source field fixture\.Text.*passed to fixture\.wrap.*passed to fixture\.frame.*passed to fixture\.send.*sink: HTTP request body`
}

// CleanContract violates the //taint:clean declaration: the write of
// tainted data into the field is the reportable event, so the "clean"
// claim every later read relies on can never silently rot.
func CleanContract(d *Doc, p *Packet) {
	p.Payload = d.Text // want `plaintext reaches write into //taint:clean field fixture\.Payload`
}

// CleanLiteral seeds the same violation through composite-literal
// initialization, the other way a field gets its first value.
func CleanLiteral(d *Doc) Packet {
	return Packet{Payload: d.Text} // want `plaintext reaches write into //taint:clean field fixture\.Payload`
}
