package fixture

import (
	//lint:ignore nonce-source fixture: seeded generator, never feeds ciphertext
	mrandv2 "math/rand/v2"
)

// Pick is deterministic test-workload generation, annotated as such.
func Pick() int { return mrandv2.IntN(3) }
