// Fixture: nonce-source must flag deterministic and out-of-place CSPRNG
// imports in non-test code.
package fixture

import (
	"crypto/rand" // want `import of crypto/rand outside internal/crypt`
	mrand "math/rand" // want `import of math/rand: deterministic randomness is banned`
)

// Draw uses both sources so the imports are live.
func Draw() (int, byte) {
	var b [1]byte
	_, _ = rand.Read(b[:])
	return mrand.Intn(10), b[0]
}
