package fixture

import (
	"math/rand" // test files may use seeded randomness freely
	"testing"
)

func TestDraw(t *testing.T) {
	if rand.New(rand.NewSource(1)).Intn(10) < 0 {
		t.Fatal("impossible")
	}
}
