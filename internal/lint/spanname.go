package lint

import (
	"go/ast"
	"go/constant"
	"regexp"
)

// SpanName is the tracing companion of MetricName: every span started
// through internal/trace (Start, Tracer.Root, Join) must use a
// compile-time-constant snake_case name. The per-phase latency breakdown
// in the bench artifacts and the /debug/traces ?root= filter both match
// span names literally (trace.EditPhases, bench.AggregatePhases); a
// dynamically built or CamelCase name would trace fine and silently fall
// out of every aggregation. Test files are exempt so unit tests can spin
// throwaway spans.
var SpanName = &Analyzer{
	Name: "span-name",
	Doc:  "trace span starts must use constant snake_case names",
	Run:  runSpanName,
}

// tracePkg is the tracing package whose span-start calls are checked.
const tracePkg = "internal/trace"

var spanNameRE = regexp.MustCompile(`^[a-z0-9]+(_[a-z0-9]+)*$`)

// spanStarters maps the trace functions that begin a span to the index of
// their name argument.
var spanStarters = map[string]int{
	"Start": 1, // Start(ctx, name)
	"Root":  1, // (*Tracer).Root(ctx, name)
	"Join":  2, // Join(ctx, header, name)
}

func runSpanName(u *Unit, m *Module, report reporter) {
	selfPkg := modulePkg(u, m) == tracePkg
	inspectFiles(u, true, func(f *ast.File, n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(u, call)
		if fn == nil {
			return true
		}
		argIdx, ok := spanStarters[fn.Name()]
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != m.Path+"/"+tracePkg {
			return true
		}
		if len(call.Args) <= argIdx {
			return true
		}
		arg := call.Args[argIdx]
		tv, ok := u.Info.Types[arg]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			// The trace package's own forwarders (Start -> Root, Join ->
			// rootWithID) legitimately pass the name through.
			if !selfPkg {
				report(arg.Pos(), "trace.%s span name must be a compile-time string constant so aggregations can match it", fn.Name())
			}
			return true
		}
		name := constant.StringVal(tv.Value)
		if !spanNameRE.MatchString(name) {
			report(arg.Pos(), "span name %q must be snake_case (regexp %s)", name, spanNameRE)
		}
		return true
	})
}
