package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
)

// MetricName pins the telemetry namespace: every metric registered
// through internal/obs (NewCounter, NewGauge, NewHistogram — both the
// package-level helpers and the Registry methods) must use a
// compile-time-constant name matching privedit_<snake_case>. The
// `make metrics-smoke` contract greps /metrics for literal family names;
// a dynamically built or differently-prefixed name would pass review,
// export fine, and silently rot that contract. Test files are exempt so
// unit tests can register throwaway families.
var MetricName = &Analyzer{
	Name: "metric-name",
	Doc:  "obs registrations must use constant privedit_-prefixed snake_case names",
	Run:  runMetricName,
}

// obsPkg is the telemetry package whose registration calls are checked.
const obsPkg = "internal/obs"

var metricNameRE = regexp.MustCompile(`^privedit_[a-z0-9]+(_[a-z0-9]+)*$`)

// registrars are the obs functions whose first argument is a family name.
var registrars = map[string]bool{
	"NewCounter":   true,
	"NewGauge":     true,
	"NewHistogram": true,
}

func runMetricName(u *Unit, m *Module, report reporter) {
	selfPkg := modulePkg(u, m) == obsPkg
	inspectFiles(u, true, func(f *ast.File, n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(u, call)
		if fn == nil || !registrars[fn.Name()] {
			return true
		}
		if fn.Pkg() == nil || fn.Pkg().Path() != m.Path+"/"+obsPkg {
			return true
		}
		if len(call.Args) == 0 {
			return true
		}
		arg := call.Args[0]
		tv, ok := u.Info.Types[arg]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			// The obs package's own thin forwarders (func NewCounter ->
			// Default.NewCounter) legitimately pass the name through.
			if !selfPkg {
				report(arg.Pos(), "obs.%s name must be a compile-time string constant so the metrics-smoke grep contract can see it", fn.Name())
			}
			return true
		}
		name := constant.StringVal(tv.Value)
		if !metricNameRE.MatchString(name) {
			report(arg.Pos(), "metric name %q must match privedit_<snake_case> (regexp %s)", name, metricNameRE)
		}
		return true
	})
}

// calleeFunc resolves the called function object, for both plain calls
// (obs.NewCounter) and method calls (reg.NewCounter).
func calleeFunc(u *Unit, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if sel, ok := u.Info.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := u.Info.Uses[fun.Sel].(*types.Func)
		return fn
	case *ast.Ident:
		fn, _ := u.Info.Uses[fun].(*types.Func)
		return fn
	}
	return nil
}
