package lint

import (
	"go/ast"
	"go/token"
	"strconv"
)

// NonceSource enforces the paper's §VI-A randomness discipline: every
// nonce that pads or chains ciphertext must come from crypto/rand, and
// only internal/crypt may talk to crypto/rand directly. Concretely, in
// non-test code:
//
//   - importing math/rand or math/rand/v2 is a diagnostic anywhere in the
//     module (deterministic generators must be confined to test files or
//     carry a //lint:ignore nonce-source justification, as the seeded
//     workload generator does);
//   - importing crypto/rand outside internal/crypt is a diagnostic, so the
//     module keeps a single auditable CSPRNG entry point.
//
// Test files (*_test.go) are exempt: seeded math/rand there is how the
// evaluation stays reproducible, and it never feeds ciphertext.
var NonceSource = &Analyzer{
	Name: "nonce-source",
	Doc:  "nonces must come from crypto/rand via internal/crypt; math/rand is banned in non-test code",
	Run:  runNonceSource,
}

// cryptPkg is the one package allowed to import crypto/rand.
const cryptPkg = "internal/crypt"

func runNonceSource(u *Unit, m *Module, report reporter) {
	pkg := modulePkg(u, m)
	for _, f := range u.Files {
		if u.IsTest[f] {
			continue
		}
		for _, spec := range f.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				continue
			}
			switch path {
			case "math/rand", "math/rand/v2":
				report(importPos(spec), "import of %s: deterministic randomness is banned outside tests; draw nonces via internal/crypt (crypto/rand)", path)
			case "crypto/rand":
				if pkg != cryptPkg {
					report(importPos(spec), "import of crypto/rand outside %s: all CSPRNG access must go through internal/crypt so nonce handling stays auditable", cryptPkg)
				}
			}
		}
	}
}

// importPos anchors the diagnostic on the import path so a //lint:ignore
// directly above the spec suppresses it.
func importPos(spec *ast.ImportSpec) token.Pos { return spec.Path.Pos() }
