// Package lint is privedit's project-specific static-analysis suite. It
// machine-checks the invariants the paper's security argument (§V-A/§V-B)
// relies on but the compiler cannot see: where randomness may come from,
// where plaintext may flow, how server-facing APIs thread context and
// locks, and how the telemetry namespace is spelled. The driver in
// cmd/privedit-lint loads the whole module with go/parser + go/types and
// runs every analyzer, failing the build on any unsuppressed diagnostic.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"privedit/internal/lint/taint"
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	Rule       string         `json:"rule"`
	Pos        token.Position `json:"-"`
	File       string         `json:"file"` // module-relative path
	Line       int            `json:"line"`
	Col        int            `json:"col"`
	Message    string         `json:"message"`
	Suppressed bool           `json:"-"` // matched by a //lint:ignore directive
	Reason     string         `json:"-"` // the directive's reason, when suppressed
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.File, d.Line, d.Col, d.Message, d.Rule)
}

// reporter is the callback analyzers use to emit diagnostics.
type reporter func(pos token.Pos, format string, args ...any)

// Analyzer is one named rule.
type Analyzer struct {
	Name string // rule ID, used in diagnostics and //lint:ignore
	Doc  string // one-line description for -rules
	Run  func(u *Unit, m *Module, report reporter)
}

// Analyzers is the full suite, in the order diagnostics are grouped.
var Analyzers = []*Analyzer{
	NonceSource,
	PlaintextLog,
	PlaintextFlow,
	CtxFirst,
	GoroutineTestFatal,
	MutexByValue,
	MetricName,
	SpanName,
	DeprecatedAPI,
}

// DirectiveRule is the pseudo-rule under which malformed //lint:ignore
// comments are reported. It cannot itself be suppressed.
const DirectiveRule = "directive"

// Run executes the given analyzers over every analysis unit of the
// module and returns all diagnostics — including suppressed ones, which
// callers normally filter with Unsuppressed — sorted by position.
func (m *Module) Run(analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, u := range m.Units {
		diags = append(diags, m.RunUnit(u, analyzers)...)
	}
	sortDiagnostics(diags)
	return diags
}

// RunUnit executes the analyzers over a single unit, applying suppression
// directives found in that unit's files.
func (m *Module) RunUnit(u *Unit, analyzers []*Analyzer) []Diagnostic {
	directives, diags := m.collectDirectives(u)
	for _, a := range analyzers {
		report := func(pos token.Pos, format string, args ...any) {
			p := m.Fset.Position(pos)
			diags = append(diags, Diagnostic{
				Rule:    a.Name,
				Pos:     p,
				File:    m.relFile(p.Filename),
				Line:    p.Line,
				Col:     p.Column,
				Message: fmt.Sprintf(format, args...),
			})
		}
		a.Run(u, m, report)
	}
	// Apply suppression: a directive covers its own line and the line
	// directly below it, in the same file.
	for i := range diags {
		d := &diags[i]
		if d.Rule == DirectiveRule {
			continue
		}
		for _, dir := range directives {
			if dir.File != d.Pos.Filename {
				continue
			}
			if d.Line != dir.Line && d.Line != dir.Line+1 {
				continue
			}
			for _, r := range dir.Rules {
				if r == d.Rule {
					d.Suppressed = true
					d.Reason = dir.Reason
					dir.used = true
				}
			}
		}
	}
	sortDiagnostics(diags)
	return diags
}

// Unsuppressed filters out diagnostics acknowledged by a directive.
func Unsuppressed(diags []Diagnostic) []Diagnostic {
	out := make([]Diagnostic, 0, len(diags))
	for _, d := range diags {
		if !d.Suppressed {
			out = append(out, d)
		}
	}
	return out
}

// collectDirectives parses every //lint: comment in the unit, returning
// the well-formed directives plus diagnostics for malformed ones.
func (m *Module) collectDirectives(u *Unit) ([]*ignoreDirective, []Diagnostic) {
	var dirs []*ignoreDirective
	var diags []Diagnostic
	for _, f := range u.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//") {
					continue // block comments cannot carry directives
				}
				text := strings.TrimPrefix(c.Text, "//")
				p := m.Fset.Position(c.Pos())
				// Malformed //taint: directives are directive errors too: a
				// typo'd annotation must never silently change the taint
				// verdict.
				if _, _, terr := taint.ParseTaintDirective(text); terr != nil && terr != taint.ErrNotDirective {
					diags = append(diags, Diagnostic{
						Rule:    DirectiveRule,
						Pos:     p,
						File:    m.relFile(p.Filename),
						Line:    p.Line,
						Col:     p.Column,
						Message: terr.Error(),
					})
					continue
				}
				rules, reason, err := ParseIgnoreDirective(text)
				if err != nil {
					if err != ErrNotDirective {
						diags = append(diags, Diagnostic{
							Rule:    DirectiveRule,
							Pos:     p,
							File:    m.relFile(p.Filename),
							Line:    p.Line,
							Col:     p.Column,
							Message: err.Error(),
						})
					}
					continue
				}
				dirs = append(dirs, &ignoreDirective{
					Rules:  rules,
					Reason: reason,
					File:   p.Filename,
					Line:   p.Line,
				})
			}
		}
	}
	return dirs, diags
}

// relFile makes a file path module-relative for stable output.
func (m *Module) relFile(filename string) string {
	if rel, ok := strings.CutPrefix(filename, m.Root+"/"); ok {
		return rel
	}
	return filename
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
}

// --- shared analyzer helpers ---

// inspectFiles walks every file of the unit, skipping test files when
// nonTestOnly is set.
func inspectFiles(u *Unit, nonTestOnly bool, fn func(f *ast.File, n ast.Node) bool) {
	for _, f := range u.Files {
		if nonTestOnly && u.IsTest[f] {
			continue
		}
		file := f
		ast.Inspect(f, func(n ast.Node) bool { return fn(file, n) })
	}
}

// modulePkg reports the unit's package path with the module prefix
// normalized away; e.g. "privedit/internal/crypt" -> "internal/crypt".
// Fixture units loaded under a synthetic "privedit/..." path normalize
// the same way, which is what lets testdata exercise path-scoped rules.
func modulePkg(u *Unit, m *Module) string {
	if rest, ok := strings.CutPrefix(u.Path, m.Path+"/"); ok {
		return rest
	}
	if u.Path == m.Path {
		return ""
	}
	return u.Path
}
