package bespin

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"privedit/internal/core"
	"privedit/internal/crypt"
)

func pwProvider(seed uint64) func(string) (string, core.Options, error) {
	return func(string) (string, core.Options, error) {
		return "code-pw", core.Options{
			Scheme:     core.ConfidentialityOnly,
			BlockChars: 8,
			Nonces:     crypt.NewSeededNonceSource(seed),
		}, nil
	}
}

func newHarness(t *testing.T) (*Server, *httptest.Server, *Client) {
	t.Helper()
	s := NewServer()
	s.EnableObservation()
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	ext := NewExtension(ts.Client().Transport, pwProvider(42))
	return s, ts, NewClient(ext.Client(), ts.URL)
}

const sourceCode = "func secretAlgorithm() int {\n\treturn 42 // proprietary\n}\n"

func TestPlainServerStoresFiles(t *testing.T) {
	s := NewServer()
	ts := httptest.NewServer(s)
	defer ts.Close()
	c := NewClient(ts.Client(), ts.URL)
	if err := c.Save("main.go", sourceCode); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := c.Load("main.go")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got != sourceCode {
		t.Errorf("Load = %q", got)
	}
	if _, err := c.Load("missing.go"); err == nil {
		t.Error("Load of missing file accepted")
	}
}

func TestServerRejectsOtherMethods(t *testing.T) {
	s := NewServer()
	ts := httptest.NewServer(s)
	defer ts.Close()
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+PathPrefix+"x", nil)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatalf("do: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("DELETE status = %d", resp.StatusCode)
	}
}

func TestEncryptedSaveAndLoad(t *testing.T) {
	server, _, client := newHarness(t)
	if err := client.Save("secret.go", sourceCode); err != nil {
		t.Fatalf("Save: %v", err)
	}
	// Server sees only ciphertext.
	stored, ok := server.File("secret.go")
	if !ok {
		t.Fatal("file not stored")
	}
	if strings.Contains(stored, "secretAlgorithm") || strings.Contains(stored, "proprietary") {
		t.Error("plaintext stored on server")
	}
	if strings.Contains(server.Observed(), "secretAlgorithm") {
		t.Error("plaintext observed by server")
	}
	// Client reads back plaintext through the extension.
	got, err := client.Load("secret.go")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got != sourceCode {
		t.Errorf("Load = %q", got)
	}
}

func TestWholeFileReencryptedEachSave(t *testing.T) {
	// The paper notes Bespin has no incremental updates: each save is a
	// full encryption, so the stored ciphertext changes completely.
	server, _, client := newHarness(t)
	if err := client.Save("f.go", sourceCode); err != nil {
		t.Fatalf("Save: %v", err)
	}
	v1, _ := server.File("f.go")
	if err := client.Save("f.go", sourceCode+"// edited\n"); err != nil {
		t.Fatalf("Save: %v", err)
	}
	v2, _ := server.File("f.go")
	if v1 == v2 {
		t.Error("ciphertext unchanged across saves")
	}
	got, err := client.Load("f.go")
	if err != nil || got != sourceCode+"// edited\n" {
		t.Errorf("Load = (%q, %v)", got, err)
	}
}

func TestUnknownRequestsBlocked(t *testing.T) {
	_, ts, _ := newHarness(t)
	ext := NewExtension(ts.Client().Transport, pwProvider(43))
	resp, err := ext.Client().Get(ts.URL + "/admin/exfiltrate")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("unknown request status = %d, want 403", resp.StatusCode)
	}
}

func TestCrossExtensionLoadWithPassword(t *testing.T) {
	_, ts, client := newHarness(t)
	if err := client.Save("shared.go", sourceCode); err != nil {
		t.Fatalf("Save: %v", err)
	}
	ext2 := NewExtension(ts.Client().Transport, pwProvider(99))
	c2 := NewClient(ext2.Client(), ts.URL)
	got, err := c2.Load("shared.go")
	if err != nil {
		t.Fatalf("Load via second extension: %v", err)
	}
	if got != sourceCode {
		t.Errorf("Load = %q", got)
	}
}

func TestWrongPasswordBlocked(t *testing.T) {
	_, ts, client := newHarness(t)
	if err := client.Save("locked.go", sourceCode); err != nil {
		t.Fatalf("Save: %v", err)
	}
	wrong := NewExtension(ts.Client().Transport, func(string) (string, core.Options, error) {
		return "bad-pw", core.Options{Nonces: crypt.NewSeededNonceSource(1)}, nil
	})
	c2 := NewClient(wrong.Client(), ts.URL)
	if _, err := c2.Load("locked.go"); err == nil {
		t.Error("wrong password load accepted")
	}
}
