// Package bespin simulates Mozilla Bespin, the on-line source-code editor
// the paper uses as its simplest target (§III): "It simply uses HTTP PUT
// requests to send user content back to the server stored as a file. No
// incremental update mechanisms are found in Bespin. By wrapping the PUT
// request with code that encrypts all user data, the server only sees
// encrypted contents."
//
// The package provides the storage server (PUT/GET of whole files), a
// client, and the encrypting extension: an http.RoundTripper that
// re-encrypts the entire file on every save — the baseline behavior that
// makes Google Documents' incremental protocol interesting by contrast.
package bespin

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"privedit/internal/core"
)

// PathPrefix is the file API root, after Bespin's open server API.
const PathPrefix = "/file/at/"

// Server is the simulated Bespin backend: a file store that never
// interprets file contents.
type Server struct {
	mu    sync.Mutex
	files map[string]string

	observed strings.Builder
	observe  bool
}

// NewServer creates an empty file store.
func NewServer() *Server {
	return &Server{files: make(map[string]string)}
}

// EnableObservation records all content the server sees (leak detector).
func (s *Server) EnableObservation() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.observe = true
}

// Observed returns everything the server has seen.
func (s *Server) Observed() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.observed.String()
}

// File returns the stored bytes of a file.
func (s *Server) File(name string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	content, ok := s.files[name]
	return content, ok
}

// ServeHTTP implements PUT (store file) and GET (fetch file).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if !strings.HasPrefix(r.URL.Path, PathPrefix) {
		http.Error(w, "bespin: unknown path", http.StatusNotFound)
		return
	}
	name := strings.TrimPrefix(r.URL.Path, PathPrefix)
	switch r.Method {
	case http.MethodPut:
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		s.mu.Lock()
		if s.observe {
			s.observed.Write(body)
			s.observed.WriteByte('\n')
		}
		s.files[name] = string(body)
		s.mu.Unlock()
		w.WriteHeader(http.StatusOK)
	case http.MethodGet:
		content, ok := s.File(name)
		if !ok {
			http.Error(w, "bespin: no such file", http.StatusNotFound)
			return
		}
		fmt.Fprint(w, content)
	default:
		http.Error(w, "bespin: method not allowed", http.StatusMethodNotAllowed)
	}
}

// Client is the Bespin editor client: whole-file save and load.
type Client struct {
	httpc *http.Client
	base  string
}

// NewClient builds a client; httpc may carry the Extension as Transport.
func NewClient(httpc *http.Client, base string) *Client {
	return &Client{httpc: httpc, base: base}
}

// Save stores a file (HTTP PUT of the whole content).
func (c *Client) Save(name, content string) error {
	req, err := http.NewRequest(http.MethodPut, c.base+PathPrefix+name, strings.NewReader(content))
	if err != nil {
		return fmt.Errorf("bespin: build put: %w", err)
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return fmt.Errorf("bespin: put: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("bespin: put status %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return nil
}

// Load fetches a file.
func (c *Client) Load(name string) (string, error) {
	resp, err := c.httpc.Get(c.base + PathPrefix + name)
	if err != nil {
		return "", fmt.Errorf("bespin: get: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", fmt.Errorf("bespin: read: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("bespin: get status %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return string(body), nil
}

// Extension is the Bespin encrypting wrapper: every PUT body is replaced
// by a freshly encrypted container; every GET response is decrypted. All
// other requests are blocked.
type Extension struct {
	base      http.RoundTripper
	passwords func(file string) (string, core.Options, error)

	mu      sync.Mutex
	editors map[string]*core.Editor
}

var _ http.RoundTripper = (*Extension)(nil)

// NewExtension wraps base (nil for http.DefaultTransport).
func NewExtension(base http.RoundTripper, passwords func(file string) (string, core.Options, error)) *Extension {
	if base == nil {
		base = http.DefaultTransport
	}
	return &Extension{base: base, passwords: passwords, editors: make(map[string]*core.Editor)}
}

// Client returns an http.Client routed through the extension.
func (e *Extension) Client() *http.Client { return &http.Client{Transport: e} }

func (e *Extension) editorFor(file string) (*core.Editor, error) {
	e.mu.Lock()
	if ed, ok := e.editors[file]; ok {
		e.mu.Unlock()
		return ed, nil
	}
	e.mu.Unlock()
	password, opts, err := e.passwords(file)
	if err != nil {
		return nil, err
	}
	ed, err := core.NewEditor(password, opts)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if existing, ok := e.editors[file]; ok {
		return existing, nil
	}
	e.editors[file] = ed
	return ed, nil
}

func blocked(req *http.Request, msg string) *http.Response {
	return &http.Response{
		StatusCode:    http.StatusForbidden,
		Status:        "403 Forbidden",
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{"Content-Type": {"text/plain"}},
		Body:          io.NopCloser(strings.NewReader(msg)),
		ContentLength: int64(len(msg)),
		Request:       req,
	}
}

// RoundTrip mediates Bespin traffic.
func (e *Extension) RoundTrip(req *http.Request) (*http.Response, error) {
	if !strings.HasPrefix(req.URL.Path, PathPrefix) {
		return blocked(req, "privedit: request blocked by extension"), nil
	}
	file := strings.TrimPrefix(req.URL.Path, PathPrefix)
	switch req.Method {
	case http.MethodPut:
		body, err := io.ReadAll(req.Body)
		req.Body.Close()
		if err != nil {
			return nil, fmt.Errorf("bespin extension: read body: %w", err)
		}
		ed, err := e.editorFor(file)
		if err != nil {
			return blocked(req, "privedit: "+err.Error()), nil
		}
		ctxt, err := ed.Encrypt(string(body))
		if err != nil {
			return blocked(req, "privedit: encrypt: "+err.Error()), nil
		}
		clone := req.Clone(req.Context())
		clone.Body = io.NopCloser(strings.NewReader(ctxt))
		clone.ContentLength = int64(len(ctxt))
		return e.base.RoundTrip(clone)
	case http.MethodGet:
		resp, err := e.base.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return resp, nil
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, fmt.Errorf("bespin extension: read response: %w", err)
		}
		password, _, err := e.passwords(file)
		if err != nil {
			return blocked(req, "privedit: "+err.Error()), nil
		}
		ed, err := core.OpenWith(password, string(raw), core.Options{})
		if err != nil {
			return blocked(req, "privedit: open: "+err.Error()), nil
		}
		e.mu.Lock()
		e.editors[file] = ed
		e.mu.Unlock()
		plain := ed.Plaintext()
		resp.Body = io.NopCloser(strings.NewReader(plain))
		resp.ContentLength = int64(len(plain))
		resp.Header.Del("Content-Length")
		return resp, nil
	default:
		return blocked(req, "privedit: request blocked by extension"), nil
	}
}
