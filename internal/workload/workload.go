// Package workload generates the documents and edit scripts used by the
// paper's evaluation (§VII):
//
//   - Micro-benchmark test cases (§VII-B): pairs (D, D′) with lengths
//     uniform in [100, 10000] and a delta transforming D into D′. The
//     paper does not say how D′ relates to D; we derive D′ from D by a
//     random edit script (the realistic interpretation — an editing
//     session), and also offer independent pairs (the literal reading,
//     where the delta degenerates to a full replacement).
//
//   - Macro-benchmark test cases (§VII-C): "a whole document save followed
//     by either replacing an existing sentence with a different one or
//     inserting or deleting an arbitrary sentence or group of sentences,"
//     on small (≈500 chars) and large (≈10000 chars) files.
//
// All randomness is seeded, so experiments are reproducible.
package workload

import (
	// The evaluation workload must be reproducible run-to-run (§VII), so
	// documents and edit scripts are drawn from a seeded deterministic
	// generator. Nothing here feeds key or nonce material: ciphertext
	// randomness comes exclusively from internal/crypt's CSPRNG.
	//lint:ignore nonce-source seeded generator for reproducible §VII evaluation workloads; never used for keys or nonces
	"math/rand"
	"strings"

	"privedit/internal/delta"
	"privedit/internal/diff"
)

// words is the vocabulary for generated prose.
var words = []string{
	"the", "quick", "brown", "fox", "jumps", "over", "lazy", "dog",
	"cloud", "service", "document", "editing", "private", "secure",
	"encryption", "incremental", "block", "cipher", "nonce", "update",
	"client", "server", "extension", "browser", "delta", "skip", "list",
	"confidential", "integrity", "provider", "storage", "session",
}

// Gen is a seeded workload generator.
type Gen struct {
	rng *rand.Rand
}

// NewGen creates a generator with the given seed.
func NewGen(seed int64) *Gen {
	return &Gen{rng: rand.New(rand.NewSource(seed))}
}

// Word returns one random vocabulary word.
func (g *Gen) Word() string { return words[g.rng.Intn(len(words))] }

// Sentence returns a random sentence of 4..14 words.
func (g *Gen) Sentence() string {
	n := 4 + g.rng.Intn(11)
	parts := make([]string, n)
	for i := range parts {
		parts[i] = g.Word()
	}
	s := strings.Join(parts, " ") + ". "
	return strings.ToUpper(s[:1]) + s[1:]
}

// Document returns prose of exactly n characters.
func (g *Gen) Document(n int) string {
	var b strings.Builder
	b.Grow(n + 80)
	for b.Len() < n {
		b.WriteString(g.Sentence())
	}
	return b.String()[:n]
}

// Intn exposes the generator's uniform integer draw.
func (g *Gen) Intn(n int) int { return g.rng.Intn(n) }

// Splice is one edit: delete Del characters at Pos, then insert Ins.
type Splice struct {
	Pos int
	Del int
	Ins string
}

// Apply performs the splice on doc.
func (sp Splice) Apply(doc string) string {
	return doc[:sp.Pos] + sp.Ins + doc[sp.Pos+sp.Del:]
}

// Delta converts the splice to a delta.
func (sp Splice) Delta() delta.Delta {
	return delta.Delta{
		delta.RetainOp(sp.Pos),
		delta.DeleteOp(sp.Del),
		delta.InsertOp(sp.Ins),
	}.Normalize()
}

// Kind selects the edit mix of a script, matching the rows of the paper's
// macro-benchmark tables (Figures 5 and 8).
type Kind int

// Edit mixes.
const (
	InsertsOnly Kind = iota + 1
	DeletesOnly
	InsertsAndDeletes
	SentenceReplace
)

// String names the kind as the paper's tables do.
func (k Kind) String() string {
	switch k {
	case InsertsOnly:
		return "inserts only"
	case DeletesOnly:
		return "deletes only"
	case InsertsAndDeletes:
		return "inserts & deletes"
	case SentenceReplace:
		return "sentence replace"
	default:
		return "unknown"
	}
}

// Edit produces one random edit of the given kind against doc. Sentence
// granularity follows §VII-C (sentences or groups of sentences).
func (g *Gen) Edit(doc string, kind Kind) Splice {
	n := len(doc)
	switch kind {
	case InsertsOnly:
		return Splice{Pos: g.rng.Intn(n + 1), Ins: g.Sentence()}
	case DeletesOnly:
		if n == 0 {
			return Splice{}
		}
		pos := g.rng.Intn(n)
		del := 20 + g.rng.Intn(60)
		if pos+del > n {
			del = n - pos
		}
		return Splice{Pos: pos, Del: del}
	case InsertsAndDeletes:
		if n == 0 || g.rng.Intn(2) == 0 {
			return g.Edit(doc, InsertsOnly)
		}
		return g.Edit(doc, DeletesOnly)
	case SentenceReplace:
		if n == 0 {
			return Splice{Ins: g.Sentence()}
		}
		pos := g.rng.Intn(n)
		del := 30 + g.rng.Intn(50)
		if pos+del > n {
			del = n - pos
		}
		return Splice{Pos: pos, Del: del, Ins: g.Sentence()}
	default:
		return Splice{}
	}
}

// Script produces count edits of the given kind. Each splice's position is
// valid against the document after the previous splices; ApplyScript
// replays them.
func (g *Gen) Script(doc string, kind Kind, count int) []Splice {
	out := make([]Splice, 0, count)
	cur := doc
	for i := 0; i < count; i++ {
		sp := g.Edit(cur, kind)
		out = append(out, sp)
		cur = sp.Apply(cur)
	}
	return out
}

// ApplyScript replays a script.
func ApplyScript(doc string, script []Splice) string {
	for _, sp := range script {
		doc = sp.Apply(doc)
	}
	return doc
}

// ScriptDelta expresses a whole script as one delta against the original
// document. Splices may move backwards, so they cannot be concatenated
// into a single left-to-right delta directly; instead the delta is derived
// from the before/after documents, which is also what the real client does
// between autosaves.
func ScriptDelta(doc string, script []Splice) delta.Delta {
	after := ApplyScript(doc, script)
	return diff.Diff(doc, after)
}

// EditedPair is the micro-benchmark generator (§VII-B, realistic reading):
// D random with |D| uniform in [minLen, maxLen]; D′ derived from D by
// `edits` random sentence-level edits; the returned delta transforms D
// into D′.
func (g *Gen) EditedPair(minLen, maxLen, edits int) (d, dPrime string, dl delta.Delta) {
	n := minLen + g.rng.Intn(maxLen-minLen+1)
	d = g.Document(n)
	script := g.Script(d, InsertsAndDeletes, edits)
	dPrime = ApplyScript(d, script)
	return d, dPrime, diff.Diff(d, dPrime)
}

// IndependentPair is the literal reading of §VII-B: D and D′ drawn
// independently, with the delta degenerating to a near-full replacement.
func (g *Gen) IndependentPair(minLen, maxLen int) (d, dPrime string, dl delta.Delta) {
	d = g.Document(minLen + g.rng.Intn(maxLen-minLen+1))
	dPrime = g.Document(minLen + g.rng.Intn(maxLen-minLen+1))
	return d, dPrime, diff.Diff(d, dPrime)
}
