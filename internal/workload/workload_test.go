package workload

import (
	"strings"
	"testing"
)

func TestDocumentLengthExact(t *testing.T) {
	g := NewGen(1)
	for _, n := range []int{1, 10, 100, 500, 10000} {
		if doc := g.Document(n); len(doc) != n {
			t.Errorf("Document(%d) has length %d", n, len(doc))
		}
	}
}

func TestDocumentIsProse(t *testing.T) {
	g := NewGen(2)
	doc := g.Document(1000)
	if !strings.Contains(doc, " ") || !strings.Contains(doc, ".") {
		t.Error("document does not look like prose")
	}
}

func TestSentenceShape(t *testing.T) {
	g := NewGen(3)
	for i := 0; i < 50; i++ {
		s := g.Sentence()
		if !strings.HasSuffix(s, ". ") {
			t.Fatalf("sentence %q has no terminator", s)
		}
		if s[0] < 'A' || s[0] > 'Z' {
			t.Fatalf("sentence %q not capitalized", s)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := NewGen(7).Document(500)
	b := NewGen(7).Document(500)
	if a != b {
		t.Error("same seed, different documents")
	}
	c := NewGen(8).Document(500)
	if a == c {
		t.Error("different seeds, same document")
	}
}

func TestSpliceApplyAndDelta(t *testing.T) {
	sp := Splice{Pos: 3, Del: 2, Ins: "XY"}
	doc := "abcdefg"
	want := "abcXYfg"
	if got := sp.Apply(doc); got != want {
		t.Errorf("Apply = %q", got)
	}
	got, err := sp.Delta().Apply(doc)
	if err != nil || got != want {
		t.Errorf("Delta().Apply = (%q, %v)", got, err)
	}
}

func TestEditKinds(t *testing.T) {
	g := NewGen(11)
	doc := g.Document(2000)
	for _, kind := range []Kind{InsertsOnly, DeletesOnly, InsertsAndDeletes, SentenceReplace} {
		for i := 0; i < 100; i++ {
			sp := g.Edit(doc, kind)
			if sp.Pos < 0 || sp.Pos+sp.Del > len(doc) {
				t.Fatalf("%v: splice out of range: %+v", kind, sp)
			}
			switch kind {
			case InsertsOnly:
				if sp.Del != 0 || sp.Ins == "" {
					t.Fatalf("InsertsOnly produced %+v", sp)
				}
			case DeletesOnly:
				if sp.Ins != "" || sp.Del == 0 {
					t.Fatalf("DeletesOnly produced %+v", sp)
				}
			case SentenceReplace:
				if sp.Ins == "" {
					t.Fatalf("SentenceReplace produced %+v", sp)
				}
			}
		}
	}
}

func TestEditOnEmptyDocument(t *testing.T) {
	g := NewGen(12)
	for _, kind := range []Kind{InsertsOnly, DeletesOnly, InsertsAndDeletes, SentenceReplace} {
		sp := g.Edit("", kind)
		if got := sp.Apply(""); kind == DeletesOnly && got != "" {
			t.Errorf("%v on empty doc = %q", kind, got)
		}
	}
}

func TestScriptRoundTrip(t *testing.T) {
	g := NewGen(13)
	doc := g.Document(1500)
	script := g.Script(doc, InsertsAndDeletes, 20)
	after := ApplyScript(doc, script)
	d := ScriptDelta(doc, script)
	got, err := d.Apply(doc)
	if err != nil {
		t.Fatalf("ScriptDelta apply: %v", err)
	}
	if got != after {
		t.Error("ScriptDelta does not reproduce the script result")
	}
}

func TestEditedPair(t *testing.T) {
	g := NewGen(14)
	for i := 0; i < 10; i++ {
		d, dPrime, dl := g.EditedPair(100, 2000, 5)
		if len(d) < 100 || len(d) > 2000 {
			t.Fatalf("|D| = %d outside bounds", len(d))
		}
		got, err := dl.Apply(d)
		if err != nil || got != dPrime {
			t.Fatalf("pair delta does not transform D into D': %v", err)
		}
		// Derived pairs share most content: the delta is much smaller
		// than a full replacement.
		if dl.InsertLen()+dl.DeleteLen() > len(d)+len(dPrime) {
			t.Error("edited pair delta larger than full replacement")
		}
	}
}

func TestIndependentPair(t *testing.T) {
	g := NewGen(15)
	d, dPrime, dl := g.IndependentPair(100, 400)
	got, err := dl.Apply(d)
	if err != nil || got != dPrime {
		t.Fatalf("independent pair delta broken: %v", err)
	}
}

func TestKindString(t *testing.T) {
	if InsertsOnly.String() == "unknown" || Kind(99).String() != "unknown" {
		t.Error("Kind.String broken")
	}
}
