package trace

import (
	"testing"
	"time"

	"privedit/internal/obs"
)

func TestWatch(t *testing.T) {
	col := withDefault(t)
	obs.Default.SetEnabled(true)
	t.Cleanup(func() { obs.Default.SetEnabled(false) })

	stop := Watch(5 * time.Millisecond)
	time.Sleep(30 * time.Millisecond)
	stats := stop()
	if again := stop(); again != stats { // idempotent
		t.Fatalf("second stop returned %+v, want %+v", again, stats)
	}

	if stats.Samples < 2 {
		t.Fatalf("only %d samples", stats.Samples)
	}
	if stats.MaxGoroutines < 1 || stats.LastGoroutines < 1 {
		t.Fatalf("goroutine stats: %+v", stats)
	}
	if stats.MaxHeapBytes == 0 || stats.LastHeapBytes == 0 {
		t.Fatalf("heap stats: %+v", stats)
	}
	if stats.MaxGoroutines < stats.LastGoroutines ||
		stats.MaxHeapBytes < stats.LastHeapBytes {
		t.Fatalf("max below last: %+v", stats)
	}

	if obs.Default.Value("privedit_runtime_goroutines") < 1 {
		t.Fatal("goroutine gauge not set")
	}
	if obs.Default.Value("privedit_runtime_heap_alloc_bytes") == 0 {
		t.Fatal("heap gauge not set")
	}

	// Each sample emitted a runtime_sample trace with annotations.
	snap := col.Snapshot()
	if len(snap) < stats.Samples {
		t.Fatalf("%d traces for %d samples", len(snap), stats.Samples)
	}
	for _, tr := range snap {
		if tr.Root != SpanRuntimeSample {
			t.Fatalf("unexpected trace root %q", tr.Root)
		}
		if !tr.HasAnnotation("goroutines") || !tr.HasAnnotation("heap_alloc_bytes") {
			t.Fatalf("sample trace missing annotations: %+v", tr)
		}
	}
}

func TestWatchDefaultInterval(t *testing.T) {
	stop := Watch(0) // tracing disabled: gauges only, no traces
	stats := stop()
	if stats.Samples < 1 {
		t.Fatal("no initial sample")
	}
}
