package trace

import (
	"bufio"
	"encoding/json"
	"io"
	"os"
	"sync"
)

// JSONLWriter is a sink that appends each completed trace as one JSON
// line to an io.Writer — the -trace-out format of privedit-edit and
// privedit-load. Safe for concurrent use.
type JSONLWriter struct {
	mu  sync.Mutex
	w   *bufio.Writer
	c   io.Closer
	err error
}

// NewJSONLWriter wraps w. If w is also an io.Closer, Close closes it.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	jw := &JSONLWriter{w: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		jw.c = c
	}
	return jw
}

// OpenJSONL creates (truncating) path and returns a JSONL sink writing to
// it.
func OpenJSONL(path string) (*JSONLWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return NewJSONLWriter(f), nil
}

// Write records one trace; pass method value JSONLWriter.Write to
// AddSink. Encoding errors are sticky and surfaced by Close.
func (jw *JSONLWriter) Write(tr Trace) {
	jw.mu.Lock()
	defer jw.mu.Unlock()
	if jw.err != nil {
		return
	}
	b, err := json.Marshal(tr)
	if err != nil {
		jw.err = err
		return
	}
	if _, err := jw.w.Write(b); err != nil {
		jw.err = err
		return
	}
	if err := jw.w.WriteByte('\n'); err != nil {
		jw.err = err
	}
}

// Close flushes and closes the underlying writer, returning the first
// error encountered over the sink's lifetime.
func (jw *JSONLWriter) Close() error {
	jw.mu.Lock()
	defer jw.mu.Unlock()
	if err := jw.w.Flush(); err != nil && jw.err == nil {
		jw.err = err
	}
	if jw.c != nil {
		if err := jw.c.Close(); err != nil && jw.err == nil {
			jw.err = err
		}
	}
	return jw.err
}
