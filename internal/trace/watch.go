package trace

import (
	"context"
	"runtime"
	"sync"
	"time"

	"privedit/internal/obs"
)

// Watchdog gauges. No-ops until obs.Enable().
var (
	metricGoroutines = obs.NewGauge("privedit_runtime_goroutines",
		"Goroutine count sampled by the trace.Watch leak watchdog.")
	metricHeapAlloc = obs.NewGauge("privedit_runtime_heap_alloc_bytes",
		"Heap bytes in use sampled by the trace.Watch leak watchdog.")
)

// WatchStats summarizes a watchdog run; returned by the stop function so
// harnesses can emit leak ceilings into their reports (ROADMAP item 5's
// soak gates build on this).
type WatchStats struct {
	Samples        int    `json:"samples"`
	MaxGoroutines  int    `json:"max_goroutines"`
	LastGoroutines int    `json:"last_goroutines"`
	MaxHeapBytes   uint64 `json:"max_heap_bytes"`
	LastHeapBytes  uint64 `json:"last_heap_bytes"`
}

// Watch starts the goroutine/heap leak watchdog: every interval it
// samples runtime.NumGoroutine and heap-in-use into the obs gauges above
// and — when tracing is enabled — emits a runtime_sample trace so the
// samples land in the flight recorder and any -trace-out file alongside
// the requests they interleave with. interval <= 0 selects one second.
// The returned stop function halts sampling (taking one final sample) and
// reports the run's statistics; it is idempotent.
func Watch(interval time.Duration) (stop func() WatchStats) {
	if interval <= 0 {
		interval = time.Second
	}
	var (
		mu    sync.Mutex
		stats WatchStats
	)
	sample := func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		g := runtime.NumGoroutine()
		metricGoroutines.Set(float64(g))
		metricHeapAlloc.Set(float64(ms.HeapAlloc))

		mu.Lock()
		stats.Samples++
		stats.LastGoroutines = g
		stats.LastHeapBytes = ms.HeapAlloc
		if g > stats.MaxGoroutines {
			stats.MaxGoroutines = g
		}
		if ms.HeapAlloc > stats.MaxHeapBytes {
			stats.MaxHeapBytes = ms.HeapAlloc
		}
		mu.Unlock()

		if _, sp := Default.Root(context.Background(), SpanRuntimeSample); sp != nil {
			sp.AnnotateInt("goroutines", int64(g))
			sp.AnnotateInt("heap_alloc_bytes", int64(ms.HeapAlloc))
			sp.End()
		}
	}

	sample()
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				sample()
			}
		}
	}()

	var once sync.Once
	return func() WatchStats {
		once.Do(func() {
			close(done)
			<-finished
			sample()
		})
		mu.Lock()
		defer mu.Unlock()
		return stats
	}
}
