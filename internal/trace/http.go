package trace

import (
	"context"
	"net/http"
	"strings"
)

// ParseHeader splits an X-Privedit-Trace value into its trace and span
// IDs. ok is false for empty or malformed values.
func ParseHeader(v string) (traceID, spanID string, ok bool) {
	i := strings.IndexByte(v, '-')
	if i <= 0 || i == len(v)-1 {
		return "", "", false
	}
	traceID, spanID = v[:i], v[i+1:]
	if !validID(traceID) || !validID(spanID) {
		return "", "", false
	}
	return traceID, spanID, true
}

func validID(s string) bool {
	if len(s) == 0 || len(s) > 32 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// SetRequestHeader stamps the wire header on req from the span carried by
// req's context, so the receiving server's spans join the caller's trace.
// No-op when no span is in flight.
func SetRequestHeader(req *http.Request) {
	if hv := HeaderValue(req.Context()); hv != "" {
		req.Header.Set(Header, hv)
	}
}

// Join continues a trace received over the wire. If header carries a
// valid trace reference and that trace is active in this process (the
// in-process httptest/load-harness case) the new span joins it directly,
// producing one merged client+server tree. If the trace is remote, a new
// local trace is started under the caller's trace ID, so the server's
// flight recorder shows the server-side tree under the ID the client
// logged. With no (or malformed) header, Join behaves like Start.
// Returns (ctx, nil) when tracing is disabled.
func Join(ctx context.Context, header, name string) (context.Context, *Span) {
	if liveTracers.Load() == 0 {
		return ctx, nil
	}
	traceID, parentID, ok := ParseHeader(header)
	if !ok {
		return Start(ctx, name)
	}
	t := Default
	if at := t.lookup(traceID); at != nil {
		return startIn(ctx, at, name, parentID, true)
	}
	if !t.enabled.Load() {
		return ctx, nil
	}
	return t.rootWithID(ctx, traceID, name, parentID, true)
}

// Middleware wraps an http.Handler so every request runs under a
// server_request span that joins the caller's trace via the
// X-Privedit-Trace header (or roots a fresh trace for untraced callers).
// The span records method, path, and response status.
func Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, sp := Join(r.Context(), r.Header.Get(Header), SpanServerRequest)
		if sp == nil {
			next.ServeHTTP(w, r)
			return
		}
		sp.Annotate("method", r.Method)
		sp.Annotate("path", r.URL.Path)
		sw := &traceStatusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r.WithContext(ctx))
		sp.AnnotateInt("status", int64(sw.status))
		sp.End()
	})
}

// traceStatusWriter captures the response status for span annotation.
type traceStatusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *traceStatusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.status = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *traceStatusWriter) Write(p []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(p)
}
