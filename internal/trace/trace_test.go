package trace

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"
)

// withDefault enables the Default tracer with a fresh collector sink for
// the duration of the test, restoring the disabled state afterwards.
func withDefault(t *testing.T) *Collector {
	t.Helper()
	col := &Collector{}
	remove := Default.AddSink(col.Collect)
	Default.SetEnabled(true)
	t.Cleanup(func() {
		Default.SetEnabled(false)
		remove()
	})
	return col
}

// waitTraces polls until the collector holds at least n traces; server
// spans may end slightly after the client side observes the response.
func waitTraces(t *testing.T, col *Collector, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for col.Len() < n {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d traces, have %d", n, col.Len())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestDisabledFastPath(t *testing.T) {
	if Default.Enabled() {
		t.Fatal("Default tracer should start disabled")
	}
	ctx, sp := Start(context.Background(), SpanEditOp)
	if sp != nil {
		t.Fatalf("Start on disabled tracer returned %v, want nil", sp)
	}
	if Current(ctx) != nil || TraceID(ctx) != "" || HeaderValue(ctx) != "" {
		t.Fatal("disabled context should carry no span")
	}
	// All methods must be no-ops on the nil span.
	sp.Annotate("k", "v")
	sp.AnnotateInt("n", 1)
	sp.End()
	if got := sp.TraceID(); got != "" {
		t.Fatalf("nil span TraceID = %q", got)
	}
}

func TestRootChildFinalization(t *testing.T) {
	col := withDefault(t)

	ctx, root := Start(context.Background(), SpanEditOp)
	if root == nil {
		t.Fatal("Start returned nil span while enabled")
	}
	root.Annotate("doc", "doc-1")

	cctx, child := Start(ctx, SpanTransform)
	child.AnnotateInt("ops", 3)
	if TraceID(cctx) != root.TraceID() {
		t.Fatal("child has a different trace ID")
	}

	// Root ends first; the trace must not finalize until the child does.
	root.End()
	if col.Len() != 0 {
		t.Fatal("trace finalized with an open child span")
	}
	child.End()
	if col.Len() != 1 {
		t.Fatalf("collector has %d traces, want 1", col.Len())
	}

	tr := col.Snapshot()[0]
	if tr.TraceID != root.TraceID() || tr.Root != SpanEditOp || tr.Doc != "doc-1" {
		t.Fatalf("bad trace header: %+v", tr)
	}
	if len(tr.Spans) != 2 {
		t.Fatalf("trace has %d spans, want 2", len(tr.Spans))
	}
	// Sorted by start time: root first.
	if tr.Spans[0].Name != SpanEditOp || tr.Spans[1].Name != SpanTransform {
		t.Fatalf("span order: %s, %s", tr.Spans[0].Name, tr.Spans[1].Name)
	}
	if tr.Spans[1].ParentID != tr.Spans[0].SpanID {
		t.Fatal("child parent_id does not reference the root span")
	}
	if !tr.HasAnnotation("ops") || !tr.HasAnnotation("doc") {
		t.Fatal("annotations lost")
	}
	if tr.HasAnnotation("missing") {
		t.Fatal("HasAnnotation invented a key")
	}
	if tr.DurationNs <= 0 || tr.StartUnixNs == 0 {
		t.Fatalf("bad timing: %+v", tr)
	}
	for _, a := range tr.Spans[1].Annotations {
		if a.Key == "ops" && a.Value != "3" {
			t.Fatalf("AnnotateInt stored %q", a.Value)
		}
	}
}

func TestDoubleEndAndLateAnnotate(t *testing.T) {
	col := withDefault(t)
	_, root := Start(context.Background(), SpanEditOp)
	root.End()
	root.End() // second End must be a no-op
	root.Annotate("late", "x")
	if col.Len() != 1 {
		t.Fatalf("collector has %d traces, want 1", col.Len())
	}
	if col.Snapshot()[0].HasAnnotation("late") {
		t.Fatal("annotation after End was recorded")
	}
}

func TestTracerRootIgnoresParent(t *testing.T) {
	col := withDefault(t)
	ctx, a := Start(context.Background(), SpanEditOp)
	_, b := Default.Root(ctx, SpanRuntimeSample)
	if a.TraceID() == b.TraceID() {
		t.Fatal("Root reused the parent's trace")
	}
	b.End()
	a.End()
	if col.Len() != 2 {
		t.Fatalf("collector has %d traces, want 2", col.Len())
	}
}

func TestSinkRemoval(t *testing.T) {
	withDefault(t)
	col := &Collector{}
	remove := Default.AddSink(col.Collect)
	remove()
	remove() // idempotent
	_, sp := Start(context.Background(), SpanEditOp)
	sp.End()
	if col.Len() != 0 {
		t.Fatal("removed sink still received a trace")
	}
	if r := Default.AddSink(nil); r == nil {
		t.Fatal("AddSink(nil) returned nil remover")
	}
}

func TestSlowSpanLog(t *testing.T) {
	withDefault(t)
	var logged []string
	Default.SetSlowSpan(time.Nanosecond, func(format string, args ...any) {
		logged = append(logged, fmt.Sprintf(format, args...))
	})
	t.Cleanup(func() { Default.SetSlowSpan(0, nil) })

	_, sp := Start(context.Background(), SpanEncrypt)
	time.Sleep(time.Millisecond)
	sp.End()
	if len(logged) == 0 {
		t.Fatal("no slow-span log emitted")
	}
	if !strings.Contains(logged[0], SpanEncrypt) || !strings.Contains(logged[0], "trace=") {
		t.Fatalf("slow-span log %q missing span name or trace ID", logged[0])
	}

	// Disabling stops the logging.
	Default.SetSlowSpan(0, nil)
	logged = nil
	_, sp = Start(context.Background(), SpanEncrypt)
	sp.End()
	if len(logged) != 0 {
		t.Fatal("slow-span log emitted after disable")
	}
}

func TestSetEnabledIdempotent(t *testing.T) {
	before := liveTracers.Load()
	tr := NewTracer()
	if liveTracers.Load() != before+1 {
		t.Fatal("NewTracer did not register as live")
	}
	tr.SetEnabled(true) // already enabled: no double count
	if liveTracers.Load() != before+1 {
		t.Fatal("SetEnabled(true) double-counted")
	}
	tr.SetEnabled(false)
	tr.SetEnabled(false)
	if liveTracers.Load() != before {
		t.Fatal("SetEnabled(false) miscounted")
	}
	if tr.Enabled() {
		t.Fatal("tracer still enabled")
	}
	var nilT *Tracer
	nilT.SetEnabled(true) // must not panic
	nilT.SetSlowSpan(time.Second, nil)
	if nilT.Enabled() {
		t.Fatal("nil tracer enabled")
	}
	if _, sp := nilT.Root(context.Background(), "x"); sp != nil {
		t.Fatal("nil tracer produced a span")
	}
}

func TestIDFormat(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := newID()
		if len(id) != 16 || !validID(id) {
			t.Fatalf("bad ID %q", id)
		}
		if seen[id] {
			t.Fatalf("duplicate ID %q", id)
		}
		seen[id] = true
	}
	if formatID(0) != "0000000000000000" {
		t.Fatalf("formatID(0) = %q", formatID(0))
	}
}

func TestConcurrentSpans(t *testing.T) {
	col := withDefault(t)
	ctx, root := Start(context.Background(), SpanEditOp)
	const n = 16
	done := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer func() { done <- struct{}{} }()
			_, sp := Start(ctx, SpanRetry)
			sp.AnnotateInt("attempt", int64(i))
			sp.End()
		}(i)
	}
	for i := 0; i < n; i++ {
		<-done
	}
	root.End()
	if col.Len() != 1 {
		t.Fatalf("collector has %d traces, want 1", col.Len())
	}
	if got := len(col.Snapshot()[0].Spans); got != n+1 {
		t.Fatalf("trace has %d spans, want %d", got, n+1)
	}
}

func BenchmarkTraceDisabled(b *testing.B) {
	if Default.Enabled() {
		b.Fatal("Default must be disabled for this benchmark")
	}
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c, sp := Start(ctx, SpanTransform)
		sp.Annotate("k", "v")
		sp.End()
		_ = c
	}
}

func BenchmarkTraceEnabled(b *testing.B) {
	tr := NewTracer()
	defer tr.SetEnabled(false)
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c, root := tr.Root(ctx, SpanEditOp)
		_, sp := Start(c, SpanTransform)
		sp.End()
		root.End()
	}
}
