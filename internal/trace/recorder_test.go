package trace

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func mkTrace(id, doc, root string, durNs int64) Trace {
	return Trace{
		TraceID:     id,
		Root:        root,
		Doc:         doc,
		StartUnixNs: 1,
		DurationNs:  durNs,
		Spans:       []SpanData{{SpanID: "01", Name: root, DurationNs: durNs}},
	}
}

func TestFlightRecorderRing(t *testing.T) {
	fr := NewFlightRecorder(3)
	for i, id := range []string{"aa", "bb", "cc", "dd", "ee"} {
		fr.Record(mkTrace(id, "d", SpanEditOp, int64(i+1)))
	}
	if fr.Total() != 5 {
		t.Fatalf("Total = %d, want 5", fr.Total())
	}
	snap := fr.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("Snapshot kept %d traces, want 3", len(snap))
	}
	// Oldest first, oldest two overwritten.
	if snap[0].TraceID != "cc" || snap[2].TraceID != "ee" {
		t.Fatalf("ring order: %s..%s", snap[0].TraceID, snap[2].TraceID)
	}

	// Default capacity path.
	if got := len(NewFlightRecorder(0).buf); got != 256 {
		t.Fatalf("default capacity %d, want 256", got)
	}
}

func decodePage(t *testing.T, rec *httptest.ResponseRecorder) recorderPage {
	t.Helper()
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var page recorderPage
	if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	return page
}

func TestRecorderHandlerFilters(t *testing.T) {
	fr := NewFlightRecorder(16)
	fr.Record(mkTrace("aa", "doc-1", SpanEditOp, 1e6))  // 1ms
	fr.Record(mkTrace("bb", "doc-2", SpanEditOp, 5e6))  // 5ms
	fr.Record(mkTrace("cc", "doc-1", SpanEditOp, 20e6)) // 20ms
	fr.Record(mkTrace("dd", "doc-1", SpanRuntimeSample, 1e3))
	h := fr.Handler()

	get := func(query string) recorderPage {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/traces"+query, nil))
		return decodePage(t, rec)
	}

	all := get("")
	if all.Total != 4 || all.Count != 4 {
		t.Fatalf("unfiltered: total=%d count=%d", all.Total, all.Count)
	}
	// Newest first.
	if all.Traces[0].TraceID != "dd" || all.Traces[3].TraceID != "aa" {
		t.Fatalf("order: %s..%s", all.Traces[0].TraceID, all.Traces[3].TraceID)
	}

	if p := get("?doc=doc-1"); p.Count != 3 {
		t.Fatalf("doc filter: count=%d", p.Count)
	}
	if p := get("?min_ms=4"); p.Count != 2 {
		t.Fatalf("min_ms filter: count=%d", p.Count)
	}
	if p := get("?trace_id=bb"); p.Count != 1 || p.Traces[0].TraceID != "bb" {
		t.Fatalf("trace_id filter: %+v", p)
	}
	if p := get("?root=edit_op"); p.Count != 3 {
		t.Fatalf("root filter: count=%d", p.Count)
	}
	if p := get("?limit=2"); p.Count != 2 || p.Traces[0].TraceID != "dd" {
		t.Fatalf("limit: %+v", p)
	}
	if p := get("?doc=doc-1&min_ms=4&limit=1"); p.Count != 1 || p.Traces[0].TraceID != "cc" {
		t.Fatalf("combined filters: %+v", p)
	}

	for _, bad := range []string{"?min_ms=x", "?limit=0", "?limit=x"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/traces"+bad, nil))
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("query %q: status %d, want 400", bad, rec.Code)
		}
	}
}

func TestRecorderAsSink(t *testing.T) {
	withDefault(t)
	fr := NewFlightRecorder(8)
	remove := Default.AddSink(fr.Record)
	defer remove()

	ctx, root := Start(context.Background(), SpanEditOp)
	root.Annotate("doc", "doc-9")
	_, child := Start(ctx, SpanSave)
	child.End()
	root.End()

	rec := httptest.NewRecorder()
	fr.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/traces?doc=doc-9", nil))
	page := decodePage(t, rec)
	if page.Count != 1 {
		t.Fatalf("recorded %d traces for doc-9, want 1", page.Count)
	}
	if len(page.Traces[0].Spans) != 2 {
		t.Fatalf("span tree has %d spans, want 2", len(page.Traces[0].Spans))
	}
	if !strings.Contains(rec.Body.String(), SpanSave) {
		t.Fatal("save span missing from JSON body")
	}
}
