package trace

import (
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// FlightRecorder is a bounded ring buffer of recently completed traces —
// the "black box" behind /debug/traces. When full, the oldest trace is
// overwritten. Safe for concurrent use.
type FlightRecorder struct {
	mu    sync.Mutex
	buf   []Trace
	next  int
	full  bool
	total int64
}

// NewFlightRecorder returns a recorder keeping the last n traces (n <= 0
// selects 256).
func NewFlightRecorder(n int) *FlightRecorder {
	if n <= 0 {
		n = 256
	}
	return &FlightRecorder{buf: make([]Trace, n)}
}

// Record stores tr; pass method value FlightRecorder.Record to AddSink.
func (fr *FlightRecorder) Record(tr Trace) {
	fr.mu.Lock()
	fr.buf[fr.next] = tr
	fr.next++
	if fr.next == len(fr.buf) {
		fr.next = 0
		fr.full = true
	}
	fr.total++
	fr.mu.Unlock()
}

// Snapshot returns the recorded traces, oldest first.
func (fr *FlightRecorder) Snapshot() []Trace {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	var out []Trace
	if fr.full {
		out = append(out, fr.buf[fr.next:]...)
	}
	out = append(out, fr.buf[:fr.next]...)
	return out
}

// Total returns how many traces have been recorded over the recorder's
// lifetime, including ones the ring has since overwritten.
func (fr *FlightRecorder) Total() int64 {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return fr.total
}

// recorderPage is the /debug/traces response envelope.
type recorderPage struct {
	// Total is the lifetime number of recorded traces; Count the number
	// returned after filtering.
	Total  int64   `json:"total"`
	Count  int     `json:"count"`
	Traces []Trace `json:"traces"`
}

// Handler returns the /debug/traces endpoint: recent traces as JSON,
// newest first. Query parameters:
//
//	doc=<id>       only traces tagged with this document
//	trace_id=<id>  only the trace with this ID
//	min_ms=<n>     only traces with total duration >= n milliseconds
//	root=<name>    only traces whose root span has this name
//	limit=<n>      at most n traces (default 50)
func (fr *FlightRecorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		doc := q.Get("doc")
		traceID := q.Get("trace_id")
		root := q.Get("root")
		var minDur time.Duration
		if s := q.Get("min_ms"); s != "" {
			ms, err := strconv.ParseFloat(s, 64)
			if err != nil {
				http.Error(w, "bad min_ms", http.StatusBadRequest)
				return
			}
			minDur = time.Duration(ms * float64(time.Millisecond))
		}
		limit := 50
		if s := q.Get("limit"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil || n < 1 {
				http.Error(w, "bad limit", http.StatusBadRequest)
				return
			}
			limit = n
		}

		all := fr.Snapshot()
		page := recorderPage{Total: fr.Total(), Traces: []Trace{}}
		// Newest first: walk the snapshot backwards.
		for i := len(all) - 1; i >= 0 && len(page.Traces) < limit; i-- {
			tr := all[i]
			if doc != "" && tr.Doc != doc {
				continue
			}
			if traceID != "" && tr.TraceID != traceID {
				continue
			}
			if root != "" && tr.Root != root {
				continue
			}
			if minDur > 0 && time.Duration(tr.DurationNs) < minDur {
				continue
			}
			page.Traces = append(page.Traces, tr)
		}
		page.Count = len(page.Traces)

		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(page) // best-effort debug endpoint
	})
}
