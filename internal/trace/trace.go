// Package trace is the repository's request-scoped tracing layer: a
// stdlib-only, context-propagated span tracer that attributes each edit
// round trip to its phases — load, decrypt, diff, transform, encrypt,
// save, retry, resync — across the client, mediator, resilience stack,
// simulated network, and gdocs server.
//
// The design mirrors internal/obs: instrumented call sites are guarded by
// one atomic load and cost a few nanoseconds while tracing is disabled
// (see BenchmarkTraceDisabled), so the hot path measured by the hotpath
// experiment is unaffected. Binaries that want traces call trace.Enable().
//
// A trace is a tree of spans sharing one trace ID. Spans propagate through
// context.Context in-process and through the X-Privedit-Trace header over
// the wire (see http.go), so a client span tree contains the server-side
// spans of every request it issued — including each resilience retry
// attempt. Completed traces are delivered to registered sinks: the flight
// recorder behind /debug/traces (recorder.go), JSONL export files
// (jsonl.go), and the bench harness's phase aggregator.
package trace

import (
	"context"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"privedit/internal/obs"
)

// Header is the HTTP header that carries trace context over the wire, as
// "traceID-spanID" (16 lowercase hex digits each). It rides next to the
// obs middleware's X-Request-ID: the request ID names one HTTP exchange,
// the trace ID names the whole edit operation that caused it.
const Header = "X-Privedit-Trace"

// Span names. Constants (not ad-hoc strings) so privedit-lint's span-name
// rule can constant-fold and enforce the snake_case taxonomy, and so the
// bench aggregator and DESIGN.md §12 share one vocabulary.
const (
	// SpanEditOp is the per-operation root span opened by the load/chaos
	// harnesses and interactive clients around one whole edit.
	SpanEditOp = "edit_op"

	// Client/mediator phases of an edit round trip.
	SpanLoad      = "load"      // fetch ciphertext document from the server
	SpanDecrypt   = "decrypt"   // stego-decode + open the block document
	SpanDiff      = "diff"      // client-side diff against last-saved text
	SpanTransform = "transform" // delta parse/coalesce/mitigate/transform
	SpanEncrypt   = "encrypt"   // full-document encrypt + stego encode
	SpanEnqueue   = "enqueue"   // pipelined save accepted into the per-doc queue
	SpanSave      = "save"      // save/update POST round trip (all attempts)
	SpanRetry     = "retry"     // one resilience retry attempt (backoff + send)
	SpanMerge     = "merge"     // OT-first conflict repair: catch-up + transform
	SpanResync    = "resync"    // conflict recovery: refetch + merge/replay

	// Structural spans around the phases.
	SpanMediateUpdate = "mediate_update" // mediator handling of one save
	SpanMediateLoad   = "mediate_load"   // mediator handling of one load
	SpanMediateCreate = "mediate_create" // mediator handling of one create
	SpanClientLoad    = "client_load"    // gdocs.Client.Load
	SpanClientSave    = "client_save"    // gdocs.Client.Save
	SpanClientSync    = "client_sync"    // gdocs.Client.Sync
	SpanDrain         = "drain"          // degraded-mode shadow replay
	SpanWriterDrain   = "writer_drain"   // pipelined writer: one queued save round trip
	SpanServerRequest = "server_request" // gdocs server handler (middleware)
	SpanServerStore   = "server_store"   // gdocs server store operation
	SpanNetDelay      = "net_delay"      // netsim simulated link+server delay
	SpanRuntimeSample = "runtime_sample" // Watch goroutine/heap sample
)

// EditPhases lists the span names the bench harnesses aggregate into the
// per-phase latency breakdown, in presentation order.
var EditPhases = []string{
	SpanLoad, SpanDecrypt, SpanDiff, SpanTransform,
	SpanEncrypt, SpanEnqueue, SpanSave, SpanRetry, SpanMerge, SpanResync,
}

// Telemetry about the tracer itself. No-ops until obs.Enable().
var (
	metricTraces = obs.NewCounter("privedit_trace_traces_total",
		"Traces completed (root span ended and all children closed).")
	metricSpans = obs.NewCounter("privedit_trace_spans_total",
		"Spans completed across all traces.")
	metricSlowSpans = obs.NewCounter("privedit_trace_slow_spans_total",
		"Spans that exceeded the configured slow-span threshold.")
)

// Annotation is one typed key/value event attached to a span at a point in
// time, e.g. a retry attempt number, an injected fault kind, or a breaker
// state transition.
type Annotation struct {
	// OffsetNs is nanoseconds since the span started.
	OffsetNs int64  `json:"offset_ns"`
	Key      string `json:"key"`
	Value    string `json:"value"`
}

// SpanData is one completed span as delivered to sinks.
type SpanData struct {
	SpanID      string       `json:"span_id"`
	ParentID    string       `json:"parent_id,omitempty"`
	Name        string       `json:"name"`
	StartUnixNs int64        `json:"start_unix_ns"`
	DurationNs  int64        `json:"duration_ns"`
	Annotations []Annotation `json:"annotations,omitempty"`
	// Remote marks a span whose parent lives in another process (it was
	// joined from an X-Privedit-Trace header).
	Remote bool `json:"remote,omitempty"`
}

// Trace is one completed span tree.
type Trace struct {
	TraceID string `json:"trace_id"`
	// Root is the name of the root span.
	Root string `json:"root"`
	// Doc is the document the trace touched, when annotated (key "doc").
	Doc         string     `json:"doc,omitempty"`
	StartUnixNs int64      `json:"start_unix_ns"`
	DurationNs  int64      `json:"duration_ns"`
	Spans       []SpanData `json:"spans"`
}

// HasAnnotation reports whether any span in the trace carries an
// annotation with the given key.
func (t Trace) HasAnnotation(key string) bool {
	for i := range t.Spans {
		for _, a := range t.Spans[i].Annotations {
			if a.Key == key {
				return true
			}
		}
	}
	return false
}

// slowCfg bundles the slow-span threshold with its log function so both
// are swapped atomically.
type slowCfg struct {
	threshold time.Duration
	logf      func(format string, args ...any)
}

// Tracer owns trace assembly and sink delivery. The zero value is not
// usable; construct with NewTracer. Default starts disabled, matching
// obs.Default.
type Tracer struct {
	enabled atomic.Bool
	slow    atomic.Pointer[slowCfg]

	mu     sync.Mutex
	active map[string]*activeTrace

	sinkMu   sync.RWMutex
	sinks    map[int]func(Trace)
	nextSink int
}

// NewTracer returns an enabled tracer with no sinks.
func NewTracer() *Tracer {
	t := &Tracer{
		active: make(map[string]*activeTrace),
		sinks:  make(map[int]func(Trace)),
	}
	t.enabled.Store(true)
	liveTracers.Add(1)
	return t
}

// Default is the process-wide tracer. Like obs.Default it starts
// disabled: until Enable is called every trace.Start site is a
// nanosecond-scale no-op.
var Default = func() *Tracer {
	t := NewTracer()
	t.SetEnabled(false)
	return t
}()

// liveTracers counts enabled tracers process-wide. Package-level Start
// checks it first so the common disabled case is one atomic load with no
// context lookup at all.
var liveTracers atomic.Int32

// Enable turns on the Default tracer.
func Enable() { Default.SetEnabled(true) }

// SetEnabled flips span collection. Traces already in flight finish
// normally; only new roots are gated.
func (t *Tracer) SetEnabled(on bool) {
	if t == nil {
		return
	}
	if t.enabled.CompareAndSwap(!on, on) {
		if on {
			liveTracers.Add(1)
		} else {
			liveTracers.Add(-1)
		}
	}
}

// Enabled reports whether new root spans are being collected.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// SetSlowSpan configures slow-span logging: any span whose duration
// reaches threshold is counted and reported through logf (log.Printf
// compatible). threshold <= 0 or nil logf disables it.
func (t *Tracer) SetSlowSpan(threshold time.Duration, logf func(format string, args ...any)) {
	if t == nil {
		return
	}
	if threshold <= 0 || logf == nil {
		t.slow.Store(nil)
		return
	}
	t.slow.Store(&slowCfg{threshold: threshold, logf: logf})
}

// AddSink registers fn to receive every completed trace and returns a
// function that removes it. Sinks run synchronously on the goroutine that
// ends the final span, so they must be fast and must not block.
func (t *Tracer) AddSink(fn func(Trace)) (remove func()) {
	if t == nil || fn == nil {
		return func() {}
	}
	t.sinkMu.Lock()
	id := t.nextSink
	t.nextSink++
	t.sinks[id] = fn
	t.sinkMu.Unlock()
	return func() {
		t.sinkMu.Lock()
		delete(t.sinks, id)
		t.sinkMu.Unlock()
	}
}

// ------------------------------------------------------------ identifiers

// ID generation needs uniqueness, not unpredictability, so it avoids both
// math/rand (banned outside tests by the nonce-source lint rule) and
// crypto/rand (confined to internal/crypt): a process-unique seed mixed
// through SplitMix64 per draw.
var (
	idCounter atomic.Uint64
	idSeed    = uint64(time.Now().UnixNano()) ^ uint64(os.Getpid())<<32
)

func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// newID returns a non-zero 64-bit identifier formatted as 16 hex digits.
func newID() string {
	for {
		v := mix64(idSeed + idCounter.Add(1))
		if v != 0 {
			return formatID(v)
		}
	}
}

func formatID(v uint64) string {
	const hexdigits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexdigits[v&0xf]
		v >>= 4
	}
	return string(b[:])
}

// ------------------------------------------------------------ activeTrace

// activeTrace accumulates the spans of one in-flight trace. It finalizes
// — delivers a Trace to the sinks and leaves the tracer's active table —
// when the root span has ended and no other span remains open, which
// tolerates server-side spans that end slightly after the client root.
type activeTrace struct {
	tracer  *Tracer
	traceID string

	mu        sync.Mutex
	spans     []SpanData
	open      int
	rootDone  bool
	finalized bool
	doc       string
	root      SpanData
}

// enter registers one more open span. It reports false when the trace
// already finalized (a late joiner must start a fresh trace instead).
func (at *activeTrace) enter() bool {
	at.mu.Lock()
	defer at.mu.Unlock()
	if at.finalized {
		return false
	}
	at.open++
	return true
}

// finish records one completed span and finalizes the trace when it was
// the last open span of a finished root.
func (at *activeTrace) finish(data SpanData, isRoot bool) {
	at.mu.Lock()
	at.spans = append(at.spans, data)
	at.open--
	if isRoot {
		at.rootDone = true
		at.root = data
	}
	fin := at.rootDone && at.open <= 0 && !at.finalized
	if fin {
		at.finalized = true
	}
	at.mu.Unlock()
	if fin {
		at.tracer.finalize(at)
	}
}

// annotateDoc records the first "doc" annotation as the trace's document.
func (at *activeTrace) annotateDoc(doc string) {
	at.mu.Lock()
	if at.doc == "" {
		at.doc = doc
	}
	at.mu.Unlock()
}

func (t *Tracer) lookup(traceID string) *activeTrace {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.active[traceID]
}

// finalize assembles the Trace and fans it out to sinks. Called exactly
// once per activeTrace, off the trace's own lock.
func (t *Tracer) finalize(at *activeTrace) {
	t.mu.Lock()
	if t.active[at.traceID] == at {
		delete(t.active, at.traceID)
	}
	t.mu.Unlock()

	at.mu.Lock()
	spans := at.spans
	sort.SliceStable(spans, func(i, j int) bool {
		return spans[i].StartUnixNs < spans[j].StartUnixNs
	})
	tr := Trace{
		TraceID:     at.traceID,
		Root:        at.root.Name,
		Doc:         at.doc,
		StartUnixNs: at.root.StartUnixNs,
		DurationNs:  at.root.DurationNs,
		Spans:       spans,
	}
	at.mu.Unlock()

	metricTraces.Inc()
	metricSpans.Add(int64(len(tr.Spans)))

	t.sinkMu.RLock()
	for _, fn := range t.sinks {
		fn(tr)
	}
	t.sinkMu.RUnlock()
}

// ------------------------------------------------------------------- Span

// Span is one in-flight timed operation. A nil *Span is valid and every
// method on it is a no-op — that is the disabled fast path. A Span is not
// safe for concurrent use; start a child span per goroutine instead.
type Span struct {
	at          *activeTrace
	name        string
	id          string
	parent      string
	remote      bool
	isRoot      bool
	start       time.Time
	startUnixNs int64
	annotations []Annotation
	ended       bool
}

type ctxKey struct{}

// fromContext returns the span carried by ctx, or nil.
func fromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}

// Current returns the span carried by ctx, or nil. The nil result is safe
// to call methods on, so call sites need no guard.
func Current(ctx context.Context) *Span {
	if liveTracers.Load() == 0 {
		return nil
	}
	return fromContext(ctx)
}

// TraceID returns the trace ID of the span carried by ctx, or "".
func TraceID(ctx context.Context) string {
	sp := Current(ctx)
	if sp == nil {
		return ""
	}
	return sp.at.traceID
}

// HeaderValue returns the "traceID-spanID" wire value for the span
// carried by ctx, or "" when there is none.
func HeaderValue(ctx context.Context) string {
	sp := Current(ctx)
	if sp == nil {
		return ""
	}
	return sp.at.traceID + "-" + sp.id
}

// Start begins a span named name. If ctx already carries a span the new
// span becomes its child on the same trace; otherwise a new root trace is
// started on the Default tracer (a no-op returning (ctx, nil) when
// disabled). The returned context carries the new span; pass it to
// everything the operation calls. End the span exactly once.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	if liveTracers.Load() == 0 {
		return ctx, nil
	}
	if parent := fromContext(ctx); parent != nil {
		return startIn(ctx, parent.at, name, parent.id, false)
	}
	return Default.Root(ctx, name)
}

// Root unconditionally begins a new trace rooted at a span named name,
// ignoring any span already in ctx. Returns (ctx, nil) when the tracer is
// nil or disabled.
func (t *Tracer) Root(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil || !t.enabled.Load() {
		return ctx, nil
	}
	return t.rootWithID(ctx, newID(), name, "", false)
}

// rootWithID starts a new activeTrace under traceID whose root span has
// the given (possibly remote) parent.
func (t *Tracer) rootWithID(ctx context.Context, traceID, name, parent string, remote bool) (context.Context, *Span) {
	at := &activeTrace{tracer: t, traceID: traceID, open: 1}
	t.mu.Lock()
	if exist, ok := t.active[traceID]; ok {
		// Concurrent join of the same remote trace: reuse it.
		t.mu.Unlock()
		if exist.enter() {
			return newSpan(ctx, exist, name, parent, remote, false)
		}
		// It finalized under us; fall through with a fresh table entry.
		t.mu.Lock()
	}
	t.active[traceID] = at
	t.mu.Unlock()
	return newSpan(ctx, at, name, parent, remote, true)
}

// startIn begins a child span inside an existing active trace, falling
// back to a fresh root if the trace finalized concurrently.
func startIn(ctx context.Context, at *activeTrace, name, parent string, remote bool) (context.Context, *Span) {
	if !at.enter() {
		return at.tracer.Root(ctx, name)
	}
	return newSpan(ctx, at, name, parent, remote, false)
}

// newSpan allocates the span after enter() was already called.
func newSpan(ctx context.Context, at *activeTrace, name, parent string, remote, isRoot bool) (context.Context, *Span) {
	now := time.Now()
	sp := &Span{
		at:          at,
		name:        name,
		id:          newID(),
		parent:      parent,
		remote:      remote,
		isRoot:      isRoot,
		start:       now,
		startUnixNs: now.UnixNano(),
	}
	return context.WithValue(ctx, ctxKey{}, sp), sp
}

// Annotate attaches a typed key/value event to the span at the current
// offset. The key "doc" additionally tags the whole trace with the
// document ID for /debug/traces filtering. No-op on nil.
func (sp *Span) Annotate(key, value string) {
	if sp == nil || sp.ended {
		return
	}
	sp.annotations = append(sp.annotations, Annotation{
		OffsetNs: time.Since(sp.start).Nanoseconds(),
		Key:      key,
		Value:    value,
	})
	if key == "doc" {
		sp.at.annotateDoc(value)
	}
}

// AnnotateInt is Annotate for integer values.
func (sp *Span) AnnotateInt(key string, value int64) {
	if sp == nil {
		return
	}
	sp.Annotate(key, strconv.FormatInt(value, 10))
}

// TraceID returns the span's trace ID, or "" on nil.
func (sp *Span) TraceID() string {
	if sp == nil {
		return ""
	}
	return sp.at.traceID
}

// End completes the span, delivering it to the trace. The second and
// later calls, and calls on nil, are no-ops.
func (sp *Span) End() {
	if sp == nil || sp.ended {
		return
	}
	sp.ended = true
	dur := time.Since(sp.start)
	data := SpanData{
		SpanID:      sp.id,
		ParentID:    sp.parent,
		Name:        sp.name,
		StartUnixNs: sp.startUnixNs,
		DurationNs:  dur.Nanoseconds(),
		Annotations: sp.annotations,
		Remote:      sp.remote,
	}
	if cfg := sp.at.tracer.slow.Load(); cfg != nil && dur >= cfg.threshold {
		metricSlowSpans.Inc()
		cfg.logf("trace: slow span %s %.1fms trace=%s span=%s",
			sp.name, float64(dur)/1e6, sp.at.traceID, sp.id)
	}
	sp.at.finish(data, sp.isRoot)
}

// --------------------------------------------------------------- Collector

// Collector is a sink that accumulates completed traces in memory, for
// tests and the bench harnesses. Safe for concurrent use.
type Collector struct {
	mu     sync.Mutex
	traces []Trace
}

// Collect appends tr; pass method value Collector.Collect to AddSink.
func (c *Collector) Collect(tr Trace) {
	c.mu.Lock()
	c.traces = append(c.traces, tr)
	c.mu.Unlock()
}

// Snapshot returns a copy of the collected traces.
func (c *Collector) Snapshot() []Trace {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Trace(nil), c.traces...)
}

// Len returns the number of collected traces.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.traces)
}
