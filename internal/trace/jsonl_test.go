package trace

import (
	"bufio"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestJSONLWriter(t *testing.T) {
	withDefault(t)
	path := filepath.Join(t.TempDir(), "traces.jsonl")
	jw, err := OpenJSONL(path)
	if err != nil {
		t.Fatal(err)
	}
	remove := Default.AddSink(jw.Write)

	for i := 0; i < 3; i++ {
		ctx, root := Start(context.Background(), SpanEditOp)
		_, sp := Start(ctx, SpanTransform)
		sp.End()
		root.End()
	}
	remove()
	if err := jw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	lines := 0
	for sc.Scan() {
		var tr Trace
		if err := json.Unmarshal(sc.Bytes(), &tr); err != nil {
			t.Fatalf("line %d: %v", lines+1, err)
		}
		if tr.Root != SpanEditOp || len(tr.Spans) != 2 {
			t.Fatalf("line %d: %+v", lines+1, tr)
		}
		lines++
	}
	if lines != 3 {
		t.Fatalf("wrote %d lines, want 3", lines)
	}
}

func TestOpenJSONLBadPath(t *testing.T) {
	if _, err := OpenJSONL(filepath.Join(t.TempDir(), "no", "such", "dir", "x.jsonl")); err == nil {
		t.Fatal("expected error for unwritable path")
	}
}
