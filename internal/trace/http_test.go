package trace

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestHeaderConstantPinned pins the wire header name that internal/obs
// duplicates by value (obs sits below trace in the import graph).
func TestHeaderConstantPinned(t *testing.T) {
	if Header != "X-Privedit-Trace" {
		t.Fatalf("trace.Header = %q; update the obs middleware's copy too", Header)
	}
}

func TestParseHeader(t *testing.T) {
	cases := []struct {
		in      string
		ok      bool
		tid, sid string
	}{
		{"00000000000000ab-00000000000000cd", true, "00000000000000ab", "00000000000000cd"},
		{"abc-def", true, "abc", "def"},
		{"", false, "", ""},
		{"abc", false, "", ""},
		{"abc-", false, "", ""},
		{"-def", false, "", ""},
		{"ABC-def", false, "", ""},
		{"abc-xyz", false, "", ""},
		{"0123456789abcdef0123456789abcdef0-def", false, "", ""},
	}
	for _, c := range cases {
		tid, sid, ok := ParseHeader(c.in)
		if ok != c.ok || tid != c.tid || sid != c.sid {
			t.Errorf("ParseHeader(%q) = %q, %q, %v; want %q, %q, %v",
				c.in, tid, sid, ok, c.tid, c.sid, c.ok)
		}
	}
}

func TestSetRequestHeader(t *testing.T) {
	withDefault(t)
	req := httptest.NewRequest(http.MethodGet, "/x", nil)
	SetRequestHeader(req)
	if req.Header.Get(Header) != "" {
		t.Fatal("header set with no span in context")
	}
	ctx, sp := Start(context.Background(), SpanEditOp)
	req = req.WithContext(ctx)
	SetRequestHeader(req)
	tid, sid, ok := ParseHeader(req.Header.Get(Header))
	if !ok || tid != sp.TraceID() {
		t.Fatalf("bad wire header %q", req.Header.Get(Header))
	}
	if sid == "" {
		t.Fatal("missing span ID in wire header")
	}
	sp.End()
}

func TestJoinInProcessMergesTrees(t *testing.T) {
	col := withDefault(t)
	ctx, root := Start(context.Background(), SpanEditOp)

	sctx, srv := Join(context.Background(), HeaderValue(ctx), SpanServerRequest)
	if srv == nil {
		t.Fatal("Join returned nil while enabled")
	}
	if TraceID(sctx) != root.TraceID() {
		t.Fatal("joined span is on a different trace")
	}
	_, store := Start(sctx, SpanServerStore)
	store.End()
	srv.End()
	root.End()

	if col.Len() != 1 {
		t.Fatalf("collector has %d traces, want 1 merged", col.Len())
	}
	tr := col.Snapshot()[0]
	var foundSrv, foundStore bool
	for _, s := range tr.Spans {
		switch s.Name {
		case SpanServerRequest:
			foundSrv = true
			if !s.Remote {
				t.Fatal("joined server span not marked remote")
			}
		case SpanServerStore:
			foundStore = true
		}
	}
	if !foundSrv || !foundStore {
		t.Fatalf("merged trace missing server spans: %+v", tr.Spans)
	}
}

func TestJoinRemoteTrace(t *testing.T) {
	col := withDefault(t)
	_, sp := Join(context.Background(), "00000000000000ab-00000000000000cd", SpanServerRequest)
	if sp == nil {
		t.Fatal("Join returned nil while enabled")
	}
	sp.End()
	if col.Len() != 1 {
		t.Fatalf("collector has %d traces, want 1", col.Len())
	}
	tr := col.Snapshot()[0]
	if tr.TraceID != "00000000000000ab" {
		t.Fatalf("remote join kept trace ID %q", tr.TraceID)
	}
	if tr.Spans[0].ParentID != "00000000000000cd" || !tr.Spans[0].Remote {
		t.Fatalf("remote join span: %+v", tr.Spans[0])
	}
}

func TestJoinBadHeaderStartsFresh(t *testing.T) {
	col := withDefault(t)
	_, sp := Join(context.Background(), "not a header", SpanServerRequest)
	sp.End()
	if col.Len() != 1 {
		t.Fatalf("collector has %d traces, want 1", col.Len())
	}
	if col.Snapshot()[0].Root != SpanServerRequest {
		t.Fatal("fallback root has wrong name")
	}
}

func TestJoinDisabled(t *testing.T) {
	if _, sp := Join(context.Background(), "ab-cd", SpanServerRequest); sp != nil {
		t.Fatal("Join produced a span while disabled")
	}
}

func TestMiddleware(t *testing.T) {
	col := withDefault(t)
	h := Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, sp := Start(r.Context(), SpanServerStore)
		sp.End()
		w.WriteHeader(http.StatusConflict)
	}))
	ts := httptest.NewServer(h)
	defer ts.Close()

	ctx, root := Start(context.Background(), SpanEditOp)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/Doc", nil)
	if err != nil {
		t.Fatal(err)
	}
	SetRequestHeader(req)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	root.End()

	waitTraces(t, col, 1)
	tr := col.Snapshot()[0]
	var srv *SpanData
	for i := range tr.Spans {
		if tr.Spans[i].Name == SpanServerRequest {
			srv = &tr.Spans[i]
		}
	}
	if srv == nil {
		t.Fatalf("no server_request span in %+v", tr.Spans)
	}
	var status, path string
	for _, a := range srv.Annotations {
		switch a.Key {
		case "status":
			status = a.Value
		case "path":
			path = a.Value
		}
	}
	if status != "409" || path != "/Doc" {
		t.Fatalf("server span annotations: status=%q path=%q", status, path)
	}
}

func TestMiddlewareDisabledPassthrough(t *testing.T) {
	called := false
	h := Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		called = true
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/x", nil))
	if !called {
		t.Fatal("middleware swallowed the request while disabled")
	}
}

func TestStatusWriterDefaultsTo200(t *testing.T) {
	col := withDefault(t)
	h := Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("ok")) // implicit 200 via Write
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/x", nil))
	if col.Len() != 1 {
		t.Fatalf("collector has %d traces, want 1", col.Len())
	}
	tr := col.Snapshot()[0]
	found := false
	for _, a := range tr.Spans[0].Annotations {
		if a.Key == "status" && a.Value == "200" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no status=200 annotation: %+v", tr.Spans[0].Annotations)
	}
}
