#!/bin/sh
# Crash-recovery smoke (CI store-smoke job, also `make store-smoke`):
# proves the durability contract end to end against a real server process.
#
#   1. Start privedit-server with a disk store (-data-dir).
#   2. Run the write storm: concurrent clients save full documents over
#      HTTP, journaling "docID version sha256(content)" after every ack.
#   3. kill -9 the server mid-storm — no drain, no flush, the WAL tail
#      may be torn.
#   4. Restart the server over the same directory and let it recover.
#   5. Verify: every document's last *acknowledged* save is still served,
#      same version and byte-identical content (SHA-256); a torn WAL tail
#      is discarded, never an excuse to lose acked data.
#
# Environment: STORE_SMOKE_ADDR (default 127.0.0.1:8751),
# STORM_SECONDS (default 4), GO (default go).
set -eu

GO="${GO:-go}"
ADDR="${STORE_SMOKE_ADDR:-127.0.0.1:8751}"
STORM_SECONDS="${STORM_SECONDS:-4}"

workdir="$(mktemp -d)"
datadir="$workdir/data"
acklog="$workdir/acks.log"
server_log="$workdir/server.log"
server_pid=""
storm_pid=""

cleanup() {
    [ -n "$storm_pid" ] && kill "$storm_pid" 2>/dev/null || true
    [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

echo "store-smoke: building binaries"
"$GO" build -o "$workdir/privedit-server" ./cmd/privedit-server
"$GO" build -o "$workdir/privedit-load" ./cmd/privedit-load

wait_up() {
    for _ in $(seq 1 50); do
        if curl -sf "http://$ADDR/metrics" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.2
    done
    echo "store-smoke: server on $ADDR never came up" >&2
    cat "$server_log" >&2 || true
    exit 1
}

echo "store-smoke: starting server with -data-dir $datadir"
"$workdir/privedit-server" -addr "$ADDR" -data-dir "$datadir" -trace=false \
    > "$server_log" 2>&1 &
server_pid=$!
wait_up

echo "store-smoke: write storm for ${STORM_SECONDS}s (acks journaled to $acklog)"
"$workdir/privedit-load" -store-storm -target "http://$ADDR" -ack-log "$acklog" \
    -sessions 4 -doc-chars 2048 &
storm_pid=$!
sleep "$STORM_SECONDS"

echo "store-smoke: kill -9 the server mid-storm"
kill -9 "$server_pid"
wait "$server_pid" 2>/dev/null || true
server_pid=""
# The storm dies with its server; reap it.
kill "$storm_pid" 2>/dev/null || true
wait "$storm_pid" 2>/dev/null || true
storm_pid=""

acked="$(wc -l < "$acklog" | tr -d ' ')"
if [ "$acked" -lt 10 ]; then
    echo "store-smoke: only $acked acks before the kill — storm too short to prove anything" >&2
    exit 1
fi
echo "store-smoke: $acked saves were acknowledged before the crash"

echo "store-smoke: restarting server over the crashed directory"
"$workdir/privedit-server" -addr "$ADDR" -data-dir "$datadir" -trace=false \
    > "$server_log.2" 2>&1 &
server_pid=$!
wait_up

recovery_line="$(grep 'recovered' "$server_log.2" | head -1 || true)"
if [ -z "$recovery_line" ]; then
    echo "store-smoke: restarted server logged no recovery line" >&2
    cat "$server_log.2" >&2
    exit 1
fi
echo "store-smoke: $recovery_line"

echo "store-smoke: verifying every acknowledged save against the recovered server"
"$workdir/privedit-load" -verify -target "http://$ADDR" -ack-log "$acklog"

echo "store-smoke: PASS — kill -9 lost zero acknowledged saves"
