#!/bin/sh
# Bench regression gate: compare this run's bench artifacts against the
# latest main-branch baselines and fail on a >THRESHOLD% regression in
# throughput or tail latency. CI downloads the baselines from the last
# successful main run; with no baseline the gate skips (first run on a
# fresh repo, expired artifacts) rather than failing spuriously.
#
# Usage: scripts/bench_compare.sh <baseline_dir> <current_dir> [threshold_pct]
#
# Gated series:
#   BENCH_load.json     load.ops_per_sec (down is bad), load.p95_ms (up is bad),
#                       and the enc_kernel_serial_vs_parallel rows: per-size
#                       batched-kernel parallel_ms (up is bad) and speedup
#                       (down is bad), so a kernel regression fails the lane
#                       even when the mediated load numbers hold steady
#   BENCH_hotpath.json  per-variant ns_per_op, p95_us, and allocs_per_op
#                       (up is bad — allocation regressions on the hot path
#                       are exactly how the overhead-bound kernels decayed)
#   BENCH_store.json    store.sustained_ops_per_sec (down), store.p95_ms (up)
set -eu

BASE="${1:?usage: bench_compare.sh <baseline_dir> <current_dir> [threshold_pct]}"
CUR="${2:?usage: bench_compare.sh <baseline_dir> <current_dir> [threshold_pct]}"
THRESHOLD="${3:-25}"

python3 - "$BASE" "$CUR" "$THRESHOLD" <<'EOF'
import json, os, sys

base_dir, cur_dir, threshold = sys.argv[1], sys.argv[2], float(sys.argv[3])
failures = []
compared = 0

def load(d, name):
    path = os.path.join(d, name)
    if not os.path.exists(path):
        return None
    with open(path) as f:
        return json.load(f)

def check(name, metric, base, cur, higher_is_better):
    """One gated series: fail on a regression beyond the threshold."""
    global compared
    if not base or not cur:
        return
    compared += 1
    if higher_is_better:
        change = (base - cur) / base * 100  # % lost
        verdict = "down"
    else:
        change = (cur - base) / base * 100  # % gained (latency)
        verdict = "up"
    line = f"{name}: {metric} {base:.3f} -> {cur:.3f} ({verdict} {change:+.1f}%)"
    if change > threshold:
        failures.append(line + f" exceeds the {threshold:.0f}% budget")
        print("FAIL " + line)
    else:
        print("ok   " + line)

# BENCH_load.json: sustained mediated throughput and tail latency.
b, c = load(base_dir, "BENCH_load.json"), load(cur_dir, "BENCH_load.json")
if b and c:
    check("BENCH_load", "ops_per_sec", b["load"]["ops_per_sec"], c["load"]["ops_per_sec"], True)
    check("BENCH_load", "p95_ms", b["load"]["p95_ms"], c["load"]["p95_ms"], False)
    # Enc kernel rows, matched by document size. .get() keeps the gate
    # tolerant of baselines that predate the kernel rows or sampled
    # different sizes.
    base_rows = {r["chars"]: r for r in b.get("enc_kernel_serial_vs_parallel") or []}
    for row in c.get("enc_kernel_serial_vs_parallel") or []:
        bb = base_rows.get(row["chars"])
        if not bb:
            continue
        check(f"BENCH_load[enc_kernel {row['chars']}ch]", "parallel_ms",
              bb["parallel_ms"], row["parallel_ms"], False)
        check(f"BENCH_load[enc_kernel {row['chars']}ch]", "speedup",
              bb["speedup"], row["speedup"], True)

# BENCH_hotpath.json: per-variant hot-path cost.
b, c = load(base_dir, "BENCH_hotpath.json"), load(cur_dir, "BENCH_hotpath.json")
if b and c:
    base_rows = {r["variant"]: r for r in b["result"]["rows"]}
    for row in c["result"]["rows"]:
        bb = base_rows.get(row["variant"])
        if not bb:
            continue
        check(f"BENCH_hotpath[{row['variant']}]", "ns_per_op", bb["ns_per_op"], row["ns_per_op"], False)
        check(f"BENCH_hotpath[{row['variant']}]", "p95_us", bb["p95_us"], row["p95_us"], False)
        if bb.get("allocs_per_op") and row.get("allocs_per_op") is not None:
            check(f"BENCH_hotpath[{row['variant']}]", "allocs_per_op",
                  bb["allocs_per_op"], row["allocs_per_op"], False)

# BENCH_store.json: persistence-layer sustained rate and tail latency.
b, c = load(base_dir, "BENCH_store.json"), load(cur_dir, "BENCH_store.json")
if b and c:
    check("BENCH_store", "sustained_ops_per_sec",
          b["store"]["sustained_ops_per_sec"], c["store"]["sustained_ops_per_sec"], True)
    check("BENCH_store", "p95_ms", b["store"]["p95_ms"], c["store"]["p95_ms"], False)

if compared == 0:
    print("bench-compare: no overlapping artifacts to compare; skipping")
    sys.exit(0)
if failures:
    print(f"bench-compare: {len(failures)} regression(s) beyond the {threshold:.0f}% budget")
    sys.exit(1)
print(f"bench-compare: {compared} series within the {threshold:.0f}% budget")
EOF
