#!/bin/sh
# Coverage gate: the packages that hold the correctness-critical logic —
# the crypto core, the skip-list indices, the delta algebra, the
# mediating extension (including the PR-4 resilience stack), the
# observability layer (metrics + request tracing), the WAL/snapshot
# persistence layer, and the serving store it backs — must each
# keep at least MIN_COVER% statement coverage. CI fails the build below
# the floor, so new code in these packages ships with tests or not at all.
#
# Usage: scripts/coverage_gate.sh [min_percent]
set -eu

MIN_COVER="${1:-${MIN_COVER:-80}}"
GO="${GO:-go}"

PACKAGES="
privedit/internal/core
privedit/internal/skiplist
privedit/internal/delta
privedit/internal/mediator
privedit/internal/obs
privedit/internal/trace
privedit/internal/store
privedit/internal/gdocs
"

fail=0
for pkg in $PACKAGES; do
    profile="$(mktemp)"
    if ! "$GO" test -count=1 -covermode=atomic -coverprofile="$profile" "$pkg" >/dev/null; then
        echo "cover-gate: FAIL $pkg (tests failed)"
        rm -f "$profile"
        fail=1
        continue
    fi
    pct="$("$GO" tool cover -func="$profile" | awk '/^total:/ {sub(/%/, "", $3); print $3}')"
    rm -f "$profile"
    if [ -z "$pct" ]; then
        echo "cover-gate: FAIL $pkg (no coverage total)"
        fail=1
        continue
    fi
    ok="$(awk -v p="$pct" -v m="$MIN_COVER" 'BEGIN { print (p+0 >= m+0) ? 1 : 0 }')"
    if [ "$ok" = 1 ]; then
        echo "cover-gate: ok   $pkg ${pct}% (floor ${MIN_COVER}%)"
    else
        echo "cover-gate: FAIL $pkg ${pct}% below the ${MIN_COVER}% floor"
        fail=1
    fi
done

if [ "$fail" != 0 ]; then
    echo "cover-gate: coverage gate failed"
    exit 1
fi
echo "cover-gate: all gated packages at or above ${MIN_COVER}%"
