// Top-level benchmarks: one testing.B benchmark per table/figure of the
// paper's evaluation (§VII). These are the micro-level counterparts of the
// cmd/privedit-bench experiment harness — run `go test -bench=. -benchmem`
// here, and `privedit-bench -exp all` for the paper-style tables.
package privedit_test

import (
	"fmt"
	"testing"

	"privedit/internal/baseline"
	"privedit/internal/core"
	"privedit/internal/crypt"
	"privedit/internal/delta"
	"privedit/internal/workload"
)

func newEditor(b *testing.B, scheme core.Scheme, blockChars int, seed uint64) *core.Editor {
	b.Helper()
	ed, err := core.NewEditor("bench", core.Options{
		Scheme:     scheme,
		BlockChars: blockChars,
		Nonces:     crypt.NewSeededNonceSource(seed),
	})
	if err != nil {
		b.Fatal(err)
	}
	return ed
}

// resizeGuard re-seeds an editor's document when random-walk drift moves
// it too far from the intended size, keeping per-op numbers comparable
// across iterations. The reset happens off the clock.
func resizeGuard(b *testing.B, ed *core.Editor, gen *workload.Gen, base int) {
	if l := ed.Len(); l < base/2 || l > base*2 {
		b.StopTimer()
		if _, err := ed.Encrypt(gen.Document(base)); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

var schemes = []core.Scheme{core.ConfidentialityOnly, core.ConfidentialityIntegrity}

// BenchmarkFig4Encryption measures whole-document encryption (Figure 4,
// row "encryption (D)"), per scheme, on a mid-sized document.
func BenchmarkFig4Encryption(b *testing.B) {
	doc := workload.NewGen(1).Document(5000)
	for _, scheme := range schemes {
		b.Run(scheme.String(), func(b *testing.B) {
			ed := newEditor(b, scheme, 1, 11)
			b.SetBytes(int64(len(doc)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ed.Encrypt(doc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig4Decryption measures opening a container (Figure 4, row
// "decryption (D')").
func BenchmarkFig4Decryption(b *testing.B) {
	doc := workload.NewGen(2).Document(5000)
	for _, scheme := range schemes {
		b.Run(scheme.String(), func(b *testing.B) {
			ed := newEditor(b, scheme, 1, 12)
			transport, err := ed.Encrypt(doc)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(doc)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := ed.Reload(transport); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig4Incremental measures transform_delta on a single sentence
// edit in a 10000-char document (Figure 4, row "incremental encryption").
func BenchmarkFig4Incremental(b *testing.B) {
	for _, scheme := range schemes {
		b.Run(scheme.String(), func(b *testing.B) {
			gen := workload.NewGen(3)
			ed := newEditor(b, scheme, 1, 13)
			if _, err := ed.Encrypt(gen.Document(10000)); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				resizeGuard(b, ed, gen, 10000)
				sp := gen.Edit(ed.Plaintext(), workload.SentenceReplace)
				if _, err := ed.Splice(sp.Pos, sp.Del, sp.Ins); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig5MacroSave measures the full mediation cost of one
// incremental save — delta parse, transform, ciphertext delta emit — for
// the small and large files of Figure 5.
func BenchmarkFig5MacroSave(b *testing.B) {
	for _, size := range []int{500, 10000} {
		for _, scheme := range schemes {
			b.Run(fmt.Sprintf("%s/size=%d", scheme, size), func(b *testing.B) {
				gen := workload.NewGen(int64(size))
				ed := newEditor(b, scheme, 1, uint64(size)+14)
				if _, err := ed.Encrypt(gen.Document(size)); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					resizeGuard(b, ed, gen, size)
					sp := gen.Edit(ed.Plaintext(), workload.InsertsAndDeletes)
					pd := sp.Delta()
					wire := pd.String()
					parsed, err := delta.Parse(wire)
					if err != nil {
						b.Fatal(err)
					}
					if _, err := ed.TransformDeltaOps(parsed); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig6BlockSize sweeps the block size for whole-document
// encryption and incremental updates (Figure 6a and 6b).
func BenchmarkFig6BlockSize(b *testing.B) {
	doc := workload.NewGen(6).Document(10000)
	for _, blockChars := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("enc/b=%d", blockChars), func(b *testing.B) {
			ed := newEditor(b, core.ConfidentialityOnly, blockChars, uint64(blockChars)+60)
			b.SetBytes(int64(len(doc)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ed.Encrypt(doc); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("inc/b=%d", blockChars), func(b *testing.B) {
			gen := workload.NewGen(int64(blockChars) + 66)
			ed := newEditor(b, core.ConfidentialityOnly, blockChars, uint64(blockChars)+61)
			if _, err := ed.Encrypt(doc); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				resizeGuard(b, ed, gen, 10000)
				sp := gen.Edit(ed.Plaintext(), workload.InsertsAndDeletes)
				if sp.Del == 0 && sp.Ins == "" {
					continue
				}
				if _, err := ed.Splice(sp.Pos, sp.Del, sp.Ins); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig7Blowup reports the ciphertext blowup per block size as a
// benchmark metric (Figure 7); the timed operation is container
// serialization.
func BenchmarkFig7Blowup(b *testing.B) {
	doc := workload.NewGen(7).Document(10000)
	for _, blockChars := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("b=%d", blockChars), func(b *testing.B) {
			ed := newEditor(b, core.ConfidentialityOnly, blockChars, uint64(blockChars)+70)
			if _, err := ed.Encrypt(doc); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(ed.Stats().Blowup, "blowup")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if len(ed.Transport()) == 0 {
					b.Fatal("empty transport")
				}
			}
		})
	}
}

// BenchmarkFig8MultiCharSave measures the incremental save with the
// paper's preferred 8-character blocks (Figure 8).
func BenchmarkFig8MultiCharSave(b *testing.B) {
	gen := workload.NewGen(8)
	ed := newEditor(b, core.ConfidentialityOnly, 8, 80)
	if _, err := ed.Encrypt(gen.Document(10000)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resizeGuard(b, ed, gen, 10000)
		sp := gen.Edit(ed.Plaintext(), workload.InsertsAndDeletes)
		if sp.Del == 0 && sp.Ins == "" {
			continue
		}
		if _, err := ed.Splice(sp.Pos, sp.Del, sp.Ins); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationBaselines contrasts the incremental editor with the
// CoClo full-reencryption baseline and the naive realign strawman on a
// 10000-char document (the DESIGN.md ablation).
func BenchmarkAblationBaselines(b *testing.B) {
	doc := workload.NewGen(9).Document(10000)
	opts := core.Options{
		Scheme:     core.ConfidentialityOnly,
		BlockChars: 8,
		Nonces:     crypt.NewSeededNonceSource(90),
	}

	b.Run("incremental", func(b *testing.B) {
		gen := workload.NewGen(91)
		ed := newEditor(b, core.ConfidentialityOnly, 8, 91)
		if _, err := ed.Encrypt(doc); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resizeGuard(b, ed, gen, 10000)
			sp := gen.Edit(ed.Plaintext(), workload.SentenceReplace)
			if _, err := ed.Splice(sp.Pos, sp.Del, sp.Ins); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("coclo-full", func(b *testing.B) {
		gen := workload.NewGen(92)
		full, err := baseline.NewFullReencrypt("bench", opts)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := full.SetText(doc); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if l := len(full.Text()); l < 5000 || l > 20000 {
				b.StopTimer()
				if _, err := full.SetText(doc); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
			sp := gen.Edit(full.Text(), workload.SentenceReplace)
			if _, err := full.Splice(sp.Pos, sp.Del, sp.Ins); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive-realign", func(b *testing.B) {
		gen := workload.NewGen(93)
		naive, err := baseline.NewNaiveRealign("bench", opts)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := naive.SetText(doc); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if l := len(naive.Text()); l < 5000 || l > 20000 {
				b.StopTimer()
				if _, err := naive.SetText(doc); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
			sp := gen.Edit(naive.Text(), workload.SentenceReplace)
			if _, err := naive.Splice(sp.Pos, sp.Del, sp.Ins); err != nil {
				b.Fatal(err)
			}
		}
	})
}
